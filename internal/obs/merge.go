package obs

import (
	"fmt"
	"html"
	"io"
	"sort"
	"strings"
	"time"
)

// ProcessTrace is one process's JSONL trace file, tagged with the
// process name (stltrace derives it from the filename).
type ProcessTrace struct {
	Proc   string
	Events []Event
}

// mergedSpan is one event in the merged, skew-corrected campaign tree.
type mergedSpan struct {
	ev       Event
	proc     string
	parent   *mergedSpan
	children []*mergedSpan
}

func (m *mergedSpan) start() int64 { return m.ev.StartN }
func (m *mergedSpan) end() int64   { return m.ev.StartN + m.ev.DurN }

// MergedTrace is the fleet-wide view of one or more campaigns: every
// process's spans on one corrected clock, linked into a single tree
// through the (globally unique, random) span IDs.
type MergedTrace struct {
	// Skew is the clock correction applied to each process's
	// timestamps, estimated from RPC parent/child span pairs. The
	// reference process (offset 0) is the one holding the root span.
	Skew map[string]time.Duration
	// SkewInconsistent names process pairs whose RPC constraint
	// intervals were empty — the midpoint was used, but the clocks
	// moved during the trace or the RPC timestamps are unreliable.
	SkewInconsistent []string

	spans []*mergedSpan
	byID  map[uint64]*mergedSpan
	roots []*mergedSpan
}

// MergeTraces merges per-process trace files into one corrected
// timeline: it estimates per-process clock skew from cross-process
// parent/child (RPC send/recv) span pairs, shifts every process onto
// the reference clock, links spans into trees, and clamps children
// into their parents so residual skew cannot make a shard appear to
// run outside its campaign.
func MergeTraces(procs []ProcessTrace) (*MergedTrace, error) {
	m := &MergedTrace{Skew: map[string]time.Duration{}, byID: map[uint64]*mergedSpan{}}
	for _, p := range procs {
		for _, ev := range p.Events {
			if ev.ID == 0 {
				continue
			}
			if prev, dup := m.byID[ev.ID]; dup {
				return nil, fmt.Errorf("obs: span id %#x appears in both %s and %s — cannot merge (pre-random-ID trace files?)",
					ev.ID, prev.proc, p.Proc)
			}
			ms := &mergedSpan{ev: ev, proc: p.Proc}
			m.byID[ev.ID] = ms
			m.spans = append(m.spans, ms)
		}
	}

	m.estimateSkew(procs)

	// Apply offsets, link the tree, clamp children into parents.
	for _, s := range m.spans {
		s.ev.StartN += int64(m.Skew[s.proc])
	}
	for _, s := range m.spans {
		if s.ev.Parent != 0 {
			if p := m.byID[s.ev.Parent]; p != nil && p != s {
				s.parent = p
				p.children = append(p.children, s)
				continue
			}
		}
		m.roots = append(m.roots, s)
	}
	for _, s := range m.spans {
		sort.Slice(s.children, func(i, j int) bool { return s.children[i].start() < s.children[j].start() })
	}
	sort.Slice(m.roots, func(i, j int) bool { return m.roots[i].start() < m.roots[j].start() })
	for _, r := range m.roots {
		clampChildren(r)
	}
	return m, nil
}

// clampChildren forces every descendant interval inside its parent —
// the invariant skew correction aims for and clamping guarantees.
func clampChildren(p *mergedSpan) {
	for _, c := range p.children {
		if c.start() < p.start() {
			c.ev.StartN = p.start()
		}
		if c.start() > p.end() {
			c.ev.StartN = p.end()
		}
		if c.end() > p.end() {
			c.ev.DurN = p.end() - c.ev.StartN
		}
		if c.ev.DurN < 0 {
			c.ev.DurN = 0
		}
		clampChildren(c)
	}
}

// estimateSkew derives one clock offset per process from the RPC
// edges: a child span recorded in process B whose parent lives in
// process A is a request the parent issued and the child served, so on
// one clock the child nests inside the parent. Each such pair bounds
// the relative offset δ = off(B)−off(A) to [pStart−cStart, pEnd−cEnd];
// intersecting the bounds over all pairs and taking the midpoint is
// the classic NTP-style estimate. Offsets then propagate from the
// reference process across the pair graph.
func (m *MergedTrace) estimateSkew(procs []ProcessTrace) {
	type bound struct{ lo, hi int64 }
	pair := map[[2]string]*bound{}
	for _, s := range m.spans {
		if s.ev.Parent == 0 {
			continue
		}
		p := m.byID[s.ev.Parent]
		if p == nil || p.proc == s.proc {
			continue
		}
		lo, hi := p.start()-s.start(), p.end()-s.end()
		if hi < lo {
			// Child longer than parent (drain races); keep the
			// interval well-formed around the midpoint.
			lo, hi = hi, lo
		}
		key := [2]string{p.proc, s.proc}
		b := pair[key]
		if b == nil {
			pair[key] = &bound{lo, hi}
			continue
		}
		inconsistent := lo > b.hi || hi < b.lo
		if lo > b.lo {
			b.lo = lo
		}
		if hi < b.hi {
			b.hi = hi
		}
		if inconsistent || b.lo > b.hi {
			mid := (b.lo + b.hi) / 2
			b.lo, b.hi = mid, mid
			name := key[0] + "↔" + key[1]
			if !contains(m.SkewInconsistent, name) {
				m.SkewInconsistent = append(m.SkewInconsistent, name)
			}
		}
	}

	// Reference process: the one holding the earliest root campaign
	// span; fall back to the first file.
	ref := ""
	var refStart int64
	for _, s := range m.spans {
		if s.ev.Kind != KindCampaign {
			continue
		}
		if parent := m.byID[s.ev.Parent]; s.ev.Parent != 0 && parent != nil {
			continue
		}
		if ref == "" || s.start() < refStart {
			ref, refStart = s.proc, s.start()
		}
	}
	if ref == "" && len(procs) > 0 {
		ref = procs[0].Proc
	}

	// BFS the pair graph from the reference.
	adj := map[string]map[string]int64{}
	for key, b := range pair {
		mid := (b.lo + b.hi) / 2
		if adj[key[0]] == nil {
			adj[key[0]] = map[string]int64{}
		}
		if adj[key[1]] == nil {
			adj[key[1]] = map[string]int64{}
		}
		adj[key[0]][key[1]] = mid  // off(B) = off(A) + mid
		adj[key[1]][key[0]] = -mid // and back
	}
	m.Skew[ref] = 0
	queue := []string{ref}
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		var next []string
		for b := range adj[a] {
			next = append(next, b)
		}
		sort.Strings(next)
		for _, b := range next {
			if _, done := m.Skew[b]; done {
				continue
			}
			m.Skew[b] = m.Skew[a] + time.Duration(adj[a][b])
			queue = append(queue, b)
		}
	}
	// Disconnected processes (no RPC edges) stay uncorrected.
	for _, p := range procs {
		if _, ok := m.Skew[p.Proc]; !ok {
			m.Skew[p.Proc] = 0
		}
	}
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// Events returns the merged, corrected events sorted by start time,
// each annotated with attrs["proc"].
func (m *MergedTrace) Events() []Event {
	out := make([]Event, 0, len(m.spans))
	for _, s := range m.spans {
		ev := s.ev
		attrs := make(map[string]string, len(ev.Attrs)+1)
		for k, v := range ev.Attrs {
			attrs[k] = v
		}
		attrs["proc"] = s.proc
		ev.Attrs = attrs
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartN < out[j].StartN })
	return out
}

// TraceIDs returns the distinct trace IDs present, largest span count
// first — the first entry is the campaign stltrace renders by default.
func (m *MergedTrace) TraceIDs() []string {
	count := map[string]int{}
	for _, s := range m.spans {
		if s.ev.Trace != "" {
			count[s.ev.Trace]++
		}
	}
	out := make([]string, 0, len(count))
	for id := range count {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		if count[out[i]] != count[out[j]] {
			return count[out[i]] > count[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// rootFor picks the campaign tree to analyze: the root span of the
// given trace (longest campaign-kind root, else longest root). Empty
// traceID means "any".
func (m *MergedTrace) rootFor(traceID string) *mergedSpan {
	var best *mergedSpan
	better := func(s *mergedSpan) bool {
		if best == nil {
			return true
		}
		bi, si := best.ev.Kind == KindCampaign, s.ev.Kind == KindCampaign
		if bi != si {
			return si
		}
		return s.ev.DurN > best.ev.DurN
	}
	for _, r := range m.roots {
		if traceID != "" && r.ev.Trace != traceID {
			continue
		}
		if better(r) {
			best = r
		}
	}
	return best
}

// The critical-path categories: where one campaign's wall-clock went.
const (
	CatQueue     = "queue-wait"
	CatTransport = "transport"
	CatSimulate  = "simulate"
	CatVerify    = "verify"
	CatJournal   = "journal"
	CatOther     = "orchestration"
)

// SpanCategory maps a span to its critical-path category. Self-time
// attribution (categorize below) means a client-side shard span's time
// not covered by its worker-side child is transport — wire, queueing
// at the worker, serialization — while the worker child itself is
// simulate (or verify for verification re-executions).
func SpanCategory(ev Event) string {
	switch {
	case ev.Name == "queue-wait":
		return CatQueue
	case ev.Kind == KindShard && ev.Attrs["side"] == "client":
		if ev.Attrs["verify"] == "true" {
			return CatVerify
		}
		return CatTransport
	case ev.Kind == KindShard:
		if ev.Attrs["verify"] == "true" {
			return CatVerify
		}
		return CatSimulate
	case ev.Kind == KindStage && (ev.Name == "faultsim" || ev.Name == "evaluate"):
		return CatSimulate
	case ev.Kind == KindStage && ev.Name == "checkpoint":
		return CatJournal
	case ev.Kind == KindStage:
		return "stage:" + ev.Name
	default:
		return CatOther
	}
}

// CategoryDur is one critical-path bucket.
type CategoryDur struct {
	Category string
	Dur      time.Duration
}

// CriticalPathSummary decomposes one campaign's wall-clock into
// categories by self-time: each instant of the root span is attributed
// to the deepest span covering it, so the categories tile the wall
// exactly — Total == Wall by construction, whatever the fan-out.
type CriticalPathSummary struct {
	TraceID    string
	Root       Event
	Wall       time.Duration
	Total      time.Duration
	Categories []CategoryDur
}

// CriticalPath computes the wall-clock decomposition for one campaign
// (empty traceID = the dominant one). Returns nil when the merge holds
// no matching root span.
func (m *MergedTrace) CriticalPath(traceID string) *CriticalPathSummary {
	root := m.rootFor(traceID)
	if root == nil {
		return nil
	}
	acc := map[string]time.Duration{}
	attributeSelfTime(root, root.start(), root.end(), acc)
	sum := &CriticalPathSummary{
		TraceID: root.ev.Trace, Root: root.ev,
		Wall: time.Duration(root.ev.DurN),
	}
	for cat, d := range acc {
		sum.Categories = append(sum.Categories, CategoryDur{cat, d})
		sum.Total += d
	}
	sort.Slice(sum.Categories, func(i, j int) bool {
		if sum.Categories[i].Dur != sum.Categories[j].Dur {
			return sum.Categories[i].Dur > sum.Categories[j].Dur
		}
		return sum.Categories[i].Category < sum.Categories[j].Category
	})
	return sum
}

// attributeSelfTime decomposes the window [lo, hi] of span s: each
// instant goes to the deepest span covering it, so the categories tile
// the window exactly whatever the tree shape. Concurrent siblings
// (parallel shard dispatches) overlap on the wall axis; the overlap is
// credited to the earliest-starting sibling — the decomposition answers
// "where did the wall-clock go", not "how much work ran" (that is what
// the histograms are for). Children are sorted by start and clamped
// inside the parent (MergeTraces guarantees both).
func attributeSelfTime(s *mergedSpan, lo, hi int64, acc map[string]time.Duration) {
	cat := SpanCategory(s.ev)
	cursor := lo
	for _, c := range s.children {
		cs, ce := c.start(), c.end()
		if cs < cursor {
			cs = cursor
		}
		if ce > hi {
			ce = hi
		}
		if ce <= cs {
			continue
		}
		if cs > cursor {
			acc[cat] += time.Duration(cs - cursor)
		}
		attributeSelfTime(c, cs, ce, acc)
		cursor = ce
	}
	if hi > cursor {
		acc[cat] += time.Duration(hi - cursor)
	}
}

// RenderWaterfall writes the TTY waterfall for one campaign: a
// depth-indented tree, one row per span, with a proportional bar on a
// shared time axis and the process name on every row.
func (m *MergedTrace) RenderWaterfall(w io.Writer, traceID string, width int) {
	root := m.rootFor(traceID)
	if root == nil {
		fmt.Fprintln(w, "no spans to render")
		return
	}
	if width < 20 {
		width = 60
	}
	t0, t1 := root.start(), root.end()
	if t1 <= t0 {
		t1 = t0 + 1
	}
	fmt.Fprintf(w, "trace %s  wall %v  reference clock: offsets applied per process\n",
		root.ev.Trace, time.Duration(root.ev.DurN).Round(time.Microsecond))
	var walk func(s *mergedSpan, depth int)
	walk = func(s *mergedSpan, depth int) {
		span := float64(t1 - t0)
		lo := int(float64(s.start()-t0) / span * float64(width))
		hi := int(float64(s.end()-t0) / span * float64(width))
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("█", hi-lo) + strings.Repeat(" ", width-hi)
		label := strings.Repeat("  ", depth) + s.ev.Name
		if len(label) > 28 {
			label = label[:28]
		}
		fmt.Fprintf(w, "%-28s %-10s |%s| %9s\n", label, trunc(s.proc, 10), bar,
			time.Duration(s.ev.DurN).Round(time.Microsecond))
		for _, c := range s.children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
}

func trunc(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}

var flameColors = map[string]string{
	CatQueue:     "#d4a017",
	CatTransport: "#4a90d9",
	CatSimulate:  "#5cb85c",
	CatVerify:    "#9b59b6",
	CatJournal:   "#e67e22",
	CatOther:     "#95a5a6",
}

// RenderHTML writes a static, dependency-free HTML flame view of one
// campaign: absolutely positioned divs on a shared time axis, one row
// per tree depth, colored by critical-path category, span details in
// the title tooltip.
func (m *MergedTrace) RenderHTML(w io.Writer, traceID string) error {
	root := m.rootFor(traceID)
	if root == nil {
		_, err := io.WriteString(w, "<!doctype html><title>gpustl trace</title><p>no spans</p>")
		return err
	}
	t0, t1 := root.start(), root.end()
	if t1 <= t0 {
		t1 = t0 + 1
	}
	span := float64(t1 - t0)
	fmt.Fprintf(w, `<!doctype html><meta charset="utf-8"><title>gpustl trace %s</title>
<style>
body{font:12px monospace;margin:16px}
.lane{position:relative;height:22px;margin-bottom:2px}
.sp{position:absolute;height:20px;overflow:hidden;white-space:nowrap;border-radius:3px;
    color:#fff;padding:2px 3px;box-sizing:border-box;font-size:11px}
.legend span{display:inline-block;padding:2px 8px;margin-right:6px;border-radius:3px;color:#fff}
</style>
<h1>trace %s</h1><p>wall %v — skew-corrected fleet view</p><div class="legend">`,
		html.EscapeString(root.ev.Trace), html.EscapeString(root.ev.Trace),
		time.Duration(root.ev.DurN).Round(time.Microsecond))
	for _, cat := range []string{CatQueue, CatTransport, CatSimulate, CatVerify, CatJournal, CatOther} {
		fmt.Fprintf(w, `<span style="background:%s">%s</span>`, flameColors[cat], cat)
	}
	fmt.Fprint(w, "</div>\n")

	// Collect spans per depth, then emit one lane per depth.
	lanes := map[int][]*mergedSpan{}
	maxDepth := 0
	var walk func(s *mergedSpan, depth int)
	walk = func(s *mergedSpan, depth int) {
		lanes[depth] = append(lanes[depth], s)
		if depth > maxDepth {
			maxDepth = depth
		}
		for _, c := range s.children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	for d := 0; d <= maxDepth; d++ {
		fmt.Fprint(w, `<div class="lane">`)
		for _, s := range lanes[d] {
			left := float64(s.start()-t0) / span * 100
			width := float64(s.ev.DurN) / span * 100
			if width < 0.05 {
				width = 0.05
			}
			cat := SpanCategory(s.ev)
			color := flameColors[cat]
			if color == "" {
				color = "#7f8c8d"
			}
			title := fmt.Sprintf("%s [%s] %s on %s — %v", s.ev.Name, s.ev.Kind, cat, s.proc,
				time.Duration(s.ev.DurN).Round(time.Microsecond))
			fmt.Fprintf(w, `<div class="sp" style="left:%.3f%%;width:%.3f%%;background:%s" title=%q>%s</div>`,
				left, width, color, title, html.EscapeString(s.ev.Name))
		}
		fmt.Fprintln(w, "</div>")
	}
	return nil
}
