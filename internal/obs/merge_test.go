package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func msN(d int64) int64 { return d * int64(time.Millisecond) }

// threeProcessFixture models one distributed campaign recorded by three
// processes with deliberately skewed clocks:
//
//	server (reference clock): execute span 0..100ms with a 10ms
//	  queue-wait and a 5ms checkpoint;
//	coordinator (clock +50ms ahead): the client-side shard span,
//	  truly 12..88ms, recorded as 62..138ms;
//	worker (clock -30ms behind): the remote shard execution, truly
//	  15..85ms, recorded as -15..55ms, with a 68ms faultsim inside.
//
// Every span carries the same trace ID, exactly as the propagated
// X-Gpustl-Trace context guarantees in production.
func threeProcessFixture() (trace string, procs []ProcessTrace) {
	trace = NewTraceID().String()
	procs = []ProcessTrace{
		{Proc: "server", Events: []Event{
			{ID: 0x10, Trace: trace, Kind: KindCampaign, Name: "execute:c1",
				StartN: msN(0), DurN: msN(100)},
			{ID: 0x11, Parent: 0x10, Trace: trace, Kind: KindStage, Name: "queue-wait",
				StartN: msN(0), DurN: msN(10)},
			{ID: 0x12, Parent: 0x10, Trace: trace, Kind: KindStage, Name: "checkpoint",
				StartN: msN(90), DurN: msN(5)},
		}},
		{Proc: "coord", Events: []Event{
			{ID: 0x20, Parent: 0x10, Trace: trace, Remote: true, Kind: KindShard,
				Name: "shard:0", Attrs: map[string]string{"side": "client"},
				StartN: msN(12 + 50), DurN: msN(76)},
		}},
		{Proc: "worker", Events: []Event{
			{ID: 0x30, Parent: 0x20, Trace: trace, Remote: true, Kind: KindShard,
				Name: "shard-exec:0", Attrs: map[string]string{"side": "worker"},
				StartN: msN(15 - 30), DurN: msN(70)},
			{ID: 0x31, Parent: 0x30, Trace: trace, Kind: KindStage, Name: "faultsim",
				StartN: msN(16 - 30), DurN: msN(68)},
		}},
	}
	return trace, procs
}

func TestMergeThreeProcessCampaign(t *testing.T) {
	trace, procs := threeProcessFixture()
	m, err := MergeTraces(procs)
	if err != nil {
		t.Fatal(err)
	}

	// Skew must be recovered exactly: the single RPC pair per edge
	// bounds the offset to a symmetric interval around the true value.
	wantSkew := map[string]time.Duration{
		"server": 0,
		"coord":  -50 * time.Millisecond,
		"worker": 30 * time.Millisecond,
	}
	for proc, want := range wantSkew {
		if got := m.Skew[proc]; got != want {
			t.Errorf("skew[%s] = %v, want %v", proc, got, want)
		}
	}
	if len(m.SkewInconsistent) != 0 {
		t.Errorf("consistent fixture flagged inconsistent: %v", m.SkewInconsistent)
	}

	// After correction every child must nest inside its parent, and
	// every span must carry the campaign's trace ID.
	events := m.Events()
	byID := map[uint64]Event{}
	for _, ev := range events {
		byID[ev.ID] = ev
		if ev.Trace != trace {
			t.Errorf("span %s trace = %q, want campaign trace %q", ev.Name, ev.Trace, trace)
		}
	}
	if len(events) != 6 {
		t.Fatalf("merged %d events, want 6", len(events))
	}
	for _, ev := range events {
		if ev.Parent == 0 {
			continue
		}
		p, ok := byID[ev.Parent]
		if !ok {
			t.Fatalf("span %s has unknown parent %#x", ev.Name, ev.Parent)
		}
		if ev.StartN < p.StartN || ev.StartN+ev.DurN > p.StartN+p.DurN {
			t.Errorf("span %s [%v..%v] outside parent %s [%v..%v] after skew correction",
				ev.Name, ev.StartN, ev.StartN+ev.DurN, p.Name, p.StartN, p.StartN+p.DurN)
		}
	}

	// The corrected shard positions are the true ones.
	if got := byID[0x20].StartN - byID[0x10].StartN; got != msN(12) {
		t.Errorf("coord shard starts %+d ns into the campaign, want 12ms", got)
	}
	if got := byID[0x30].StartN - byID[0x10].StartN; got != msN(15) {
		t.Errorf("worker shard starts %+d ns into the campaign, want 15ms", got)
	}
}

func TestMergeCriticalPathTilesWall(t *testing.T) {
	trace, procs := threeProcessFixture()
	m, err := MergeTraces(procs)
	if err != nil {
		t.Fatal(err)
	}
	cp := m.CriticalPath(trace)
	if cp == nil {
		t.Fatal("no critical path for the campaign trace")
	}
	if cp.Wall != 100*time.Millisecond {
		t.Errorf("wall = %v, want 100ms", cp.Wall)
	}
	// Self-time attribution tiles the root exactly; the acceptance bar
	// is 5%, the construction gives 0.
	if diff := math.Abs(float64(cp.Total - cp.Wall)); diff > 0.05*float64(cp.Wall) {
		t.Errorf("category total %v deviates from wall %v by more than 5%%", cp.Total, cp.Wall)
	}
	want := map[string]time.Duration{
		CatSimulate:  70 * time.Millisecond, // worker shard self 2ms + faultsim 68ms
		CatQueue:     10 * time.Millisecond,
		CatOther:     9 * time.Millisecond, // campaign self-time
		CatTransport: 6 * time.Millisecond, // client shard minus worker child
		CatJournal:   5 * time.Millisecond, // checkpoint stage
	}
	got := map[string]time.Duration{}
	for _, c := range cp.Categories {
		got[c.Category] = c.Dur
	}
	for cat, w := range want {
		if got[cat] != w {
			t.Errorf("category %s = %v, want %v (all: %v)", cat, got[cat], w, got)
		}
	}
	if cp.Categories[0].Category != CatSimulate {
		t.Errorf("dominant category = %s, want simulate", cp.Categories[0].Category)
	}
}

func TestMergeRenderers(t *testing.T) {
	trace, procs := threeProcessFixture()
	m, err := MergeTraces(procs)
	if err != nil {
		t.Fatal(err)
	}

	var tty strings.Builder
	m.RenderWaterfall(&tty, trace, 60)
	out := tty.String()
	for _, want := range []string{"execute:c1", "queue-wait", "shard:0", "shard-exec:0", "server", "coord", "worker", trace} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall missing %q:\n%s", want, out)
		}
	}

	var html strings.Builder
	if err := m.RenderHTML(&html, trace); err != nil {
		t.Fatal(err)
	}
	h := html.String()
	for _, want := range []string{"<!doctype html", trace, "shard-exec:0", "queue-wait"} {
		if !strings.Contains(h, want) {
			t.Errorf("HTML flame view missing %q", want)
		}
	}

	if ids := m.TraceIDs(); len(ids) != 1 || ids[0] != trace {
		t.Errorf("TraceIDs = %v, want [%s]", ids, trace)
	}
}

func TestMergeClampsChildrenUnderResidualSkew(t *testing.T) {
	// A child longer than its parent (drain race / bad clock) cannot be
	// nested by any offset; the merge takes the midpoint and clamps.
	procs := []ProcessTrace{
		{Proc: "a", Events: []Event{
			{ID: 1, Kind: KindCampaign, Name: "c", StartN: msN(0), DurN: msN(10)},
		}},
		{Proc: "b", Events: []Event{
			{ID: 2, Parent: 1, Remote: true, Kind: KindShard, Name: "s",
				StartN: msN(0), DurN: msN(20)},
		}},
	}
	m, err := MergeTraces(procs)
	if err != nil {
		t.Fatal(err)
	}
	var parent, child Event
	for _, ev := range m.Events() {
		if ev.ID == 1 {
			parent = ev
		} else {
			child = ev
		}
	}
	if child.StartN < parent.StartN || child.StartN+child.DurN > parent.StartN+parent.DurN {
		t.Errorf("child [%d..%d] not clamped inside parent [%d..%d]",
			child.StartN, child.StartN+child.DurN, parent.StartN, parent.StartN+parent.DurN)
	}
}

func TestMergeInconsistentPairsReported(t *testing.T) {
	// Two RPC pairs between the same processes whose constraint
	// intervals cannot intersect: the clock moved mid-trace.
	procs := []ProcessTrace{
		{Proc: "a", Events: []Event{
			{ID: 1, Kind: KindCampaign, Name: "c", StartN: msN(0), DurN: msN(100)},
			{ID: 2, Parent: 1, Kind: KindStage, Name: "s1", StartN: msN(0), DurN: msN(10)},
			{ID: 3, Parent: 1, Kind: KindStage, Name: "s2", StartN: msN(50), DurN: msN(10)},
		}},
		{Proc: "b", Events: []Event{
			// First RPC: child nests under s1 only with offset ~ -200ms.
			{ID: 4, Parent: 2, Remote: true, Kind: KindShard, Name: "r1",
				StartN: msN(202), DurN: msN(6)},
			// Second RPC: child nests under s2 only with offset ~ +100ms.
			{ID: 5, Parent: 3, Remote: true, Kind: KindShard, Name: "r2",
				StartN: msN(-48), DurN: msN(6)},
		}},
	}
	m, err := MergeTraces(procs)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.SkewInconsistent) == 0 {
		t.Fatal("contradictory RPC constraints not reported")
	}
	// Even with an unreliable estimate, no child may escape its parent.
	byID := map[uint64]Event{}
	for _, ev := range m.Events() {
		byID[ev.ID] = ev
	}
	for _, ev := range m.Events() {
		if ev.Parent == 0 {
			continue
		}
		p := byID[ev.Parent]
		if ev.StartN < p.StartN || ev.StartN+ev.DurN > p.StartN+p.DurN {
			t.Errorf("span %s outside parent %s despite clamping", ev.Name, p.Name)
		}
	}
}

func TestMergeRejectsDuplicateSpanIDs(t *testing.T) {
	procs := []ProcessTrace{
		{Proc: "a", Events: []Event{{ID: 7, Kind: KindCampaign, Name: "c", DurN: 1}}},
		{Proc: "b", Events: []Event{{ID: 7, Kind: KindShard, Name: "s", DurN: 1}}},
	}
	if _, err := MergeTraces(procs); err == nil {
		t.Fatal("duplicate span IDs across files not rejected")
	}
}
