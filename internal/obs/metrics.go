// Package obs is the campaign telemetry layer: a dependency-light
// metrics registry (counters, gauges, histograms with atomic hot
// paths), hierarchical trace spans written as JSONL through the
// journal's atomic-write helpers, and slog-based structured logging
// helpers. It is the measurement substrate the compaction pipeline
// (internal/run), the distributed fault-simulation fleet
// (internal/dist) and the simulator itself (internal/fault) report
// through, and the thing every future performance claim is measured
// against.
//
// Design rules:
//
//   - The hot path is one atomic add. Metric handles are looked up once
//     (Registry.Counter et al. get-or-create under a lock) and then
//     incremented lock-free; packages on inner loops accumulate locally
//     and publish once per batch.
//   - Everything is nil-safe: a nil *Registry hands out nil handles,
//     and every handle method on a nil receiver is a no-op. Callers
//     wire telemetry unconditionally; "off" costs a predicted branch.
//   - No dependencies beyond the standard library, and no globals: the
//     registry a command creates is the registry its layers report to.
//
// Series names follow the Prometheus data model: a base name plus
// optional labels, written inline as `name{key="value"}`. WritePrometheus
// renders the text exposition format; WriteJSON (and ExpvarFunc) render
// an expvar-compatible JSON snapshot.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// usable; all methods are safe on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a floating-point metric that can go up and down. The zero
// value is usable; all methods are safe on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (CAS loop; gauges are not hot-path metrics).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into cumulative buckets with the given
// upper bounds (ascending; +Inf is implicit). Observe is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last = +Inf
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	n      atomic.Uint64

	// Exemplar storage (ObserveExemplar): one slot per bucket, written
	// under exMu off the Observe hot path, allocated on first use so
	// plain histograms pay only two nil words.
	exMu sync.Mutex
	ex   []Exemplar
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start, each factor times the previous — the standard latency ladder.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// DefLatencyBuckets spans 100µs to ~200s, the range of shard and stage
// latencies in this system.
func DefLatencyBuckets() []float64 { return ExpBuckets(100e-6, 2, 21) }

// DefQueueBuckets spans 10µs to ~40s: admission queue waits and shed
// decisions, which must resolve much faster than the work they gate.
func DefQueueBuckets() []float64 { return ExpBuckets(10e-6, 2, 22) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket ladders here are ~20 entries and the scan is
	// branch-predictable; a binary search is not faster at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Registry holds named metrics. Handles are get-or-create: the first
// call for a series name allocates it, later calls return the same
// handle. A nil *Registry hands out nil handles, so telemetry wiring
// needs no conditionals at the call sites.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the counter for the series name, creating it on
// first use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge for the series name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram for the series name, creating it
// with the given bucket bounds on first use (later calls ignore
// bounds). Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = &Histogram{bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Uint64, len(h.bounds)+1)
		r.hists[name] = h
	}
	return h
}

// splitSeries separates `base{labels}` into base and the label body
// (without braces); a plain name comes back with empty labels.
func splitSeries(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (sorted, so scrapes and tests are deterministic).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()

	typed := map[string]string{}
	var names []string
	collect := func(m map[string]string) {
		for n := range m {
			names = append(names, n)
		}
	}
	cnames := make(map[string]string, len(r.counters))
	for n := range r.counters {
		cnames[n] = "counter"
	}
	gnames := make(map[string]string, len(r.gauges))
	for n := range r.gauges {
		gnames[n] = "gauge"
	}
	hnames := make(map[string]string, len(r.hists))
	for n := range r.hists {
		hnames[n] = "histogram"
	}
	collect(cnames)
	collect(gnames)
	collect(hnames)
	sort.Strings(names)

	for _, name := range names {
		base, labels := splitSeries(name)
		kind := "counter"
		switch {
		case gnames[name] != "":
			kind = "gauge"
		case hnames[name] != "":
			kind = "histogram"
		}
		if typed[base] == "" {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind); err != nil {
				return err
			}
			typed[base] = kind
		}
		switch kind {
		case "counter":
			if _, err := fmt.Fprintf(w, "%s %d\n", name, r.counters[name].Value()); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "%s %g\n", name, r.gauges[name].Value()); err != nil {
				return err
			}
		case "histogram":
			h := r.hists[name]
			cum := uint64(0)
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				if _, err := fmt.Fprintf(w, "%s %d\n", bucketSeries(base, labels, fmt.Sprintf("%g", b)), cum); err != nil {
					return err
				}
			}
			cum += h.counts[len(h.bounds)].Load()
			if _, err := fmt.Fprintf(w, "%s %d\n", bucketSeries(base, labels, "+Inf"), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %g\n", series(base+"_sum", labels), h.Sum()); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", series(base+"_count", labels), h.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

func series(base, labels string) string {
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}

func bucketSeries(base, labels, le string) string {
	lab := fmt.Sprintf("le=%q", le)
	if labels != "" {
		lab = labels + "," + lab
	}
	return base + "_bucket{" + lab + "}"
}

// HistogramSnapshot is a histogram's state in a Snapshot.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets map[string]uint64 `json:"buckets"` // upper bound -> cumulative count
}

// Snapshot captures every metric as plain values, the shape WriteJSON
// and the expvar integration serve.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot returns a point-in-time copy of every metric.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Buckets: map[string]uint64{}}
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			hs.Buckets[fmt.Sprintf("%g", b)] = cum
		}
		hs.Buckets["+Inf"] = cum + h.counts[len(h.bounds)].Load()
		s.Histograms[n] = hs
	}
	return s
}

// MarshalSnapshot renders a snapshot as indented JSON.
func MarshalSnapshot(s Snapshot) ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// WriteJSON renders the snapshot as indented JSON (the shape served
// under /debug/vars and written by `stlcompact -metrics-out`).
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := MarshalSnapshot(r.Snapshot())
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ExpvarFunc adapts the registry to expvar: publish the result under a
// name and /debug/vars includes a live snapshot.
func (r *Registry) ExpvarFunc() expvar.Func {
	return func() any { return r.Snapshot() }
}

var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// PublishExpvar publishes the registry's live snapshot under name in
// the process-wide expvar namespace, once; republishing the same name
// (tests, restarted servers in one process) is a no-op instead of the
// expvar.Publish panic.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] {
		return
	}
	expvarPublished[name] = true
	expvar.Publish(name, r.ExpvarFunc())
}
