package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("gpustl_test_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("gpustl_test_total") != c {
		t.Fatal("get-or-create returned a different counter handle")
	}

	g := r.Gauge("gpustl_test_ratio")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge = %g, want 2", got)
	}

	h := r.Histogram("gpustl_test_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("histogram count = %d, want 5", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Fatalf("histogram sum = %g, want 56.05", h.Sum())
	}
	snap := r.Snapshot()
	hs := snap.Histograms["gpustl_test_seconds"]
	if hs.Buckets["0.1"] != 1 || hs.Buckets["1"] != 3 || hs.Buckets["10"] != 4 || hs.Buckets["+Inf"] != 5 {
		t.Fatalf("cumulative buckets wrong: %+v", hs.Buckets)
	}
}

func TestNilRegistryAndHandlesAreNoOps(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Counter("x").Add(3)
	r.Gauge("y").Set(1)
	r.Gauge("y").Add(1)
	r.Histogram("z", nil).Observe(1)
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	r.PublishExpvar("gpustl_nil_test")
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
	var tr *Tracer
	sp := tr.Start(nil, KindStage, "noop")
	sp.Annotate("k", "v")
	sp.End()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(`gpustl_dist_dispatches_total`).Add(7)
	r.Gauge(`gpustl_dist_worker_up{worker="w1"}`).Set(1)
	r.Gauge(`gpustl_dist_worker_up{worker="w2"}`).Set(0)
	h := r.Histogram(`gpustl_dist_shard_seconds{worker="w1"}`, []float64{0.5, 2})
	h.Observe(0.1)
	h.Observe(1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE gpustl_dist_dispatches_total counter",
		"gpustl_dist_dispatches_total 7",
		"# TYPE gpustl_dist_worker_up gauge",
		`gpustl_dist_worker_up{worker="w1"} 1`,
		`gpustl_dist_worker_up{worker="w2"} 0`,
		"# TYPE gpustl_dist_shard_seconds histogram",
		`gpustl_dist_shard_seconds_bucket{worker="w1",le="0.5"} 1`,
		`gpustl_dist_shard_seconds_bucket{worker="w1",le="2"} 2`,
		`gpustl_dist_shard_seconds_bucket{worker="w1",le="+Inf"} 2`,
		`gpustl_dist_shard_seconds_sum{worker="w1"} 1.1`,
		`gpustl_dist_shard_seconds_count{worker="w1"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// The TYPE line for a labeled family must appear exactly once.
	if n := strings.Count(out, "# TYPE gpustl_dist_worker_up gauge"); n != 1 {
		t.Errorf("worker_up TYPE line appears %d times", n)
	}
}

// TestRegistryConcurrent is the race-detector test CI runs: handles
// are created and hammered from many goroutines at once.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("gpustl_conc_total")
			g := r.Gauge("gpustl_conc_gauge")
			h := r.Histogram("gpustl_conc_seconds", DefLatencyBuckets())
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) * 1e-4)
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("gpustl_conc_total").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("gpustl_conc_gauge").Value(); got != 8000 {
		t.Fatalf("gauge = %g, want 8000", got)
	}
	if got := r.Histogram("gpustl_conc_seconds", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("gpustl_mux_total").Add(3)
	mux := NewDebugMux(r, "gpustl_mux_test")
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		res, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := res.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return res.StatusCode, b.String()
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "gpustl_mux_total 3") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	code, body := get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars = %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	if _, ok := vars["gpustl_mux_test"]; !ok {
		t.Fatalf("/debug/vars missing published registry: %s", body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}
