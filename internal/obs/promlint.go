package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// LintProblem is one finding from LintPrometheusText.
type LintProblem struct {
	Metric string
	Text   string
}

func (p LintProblem) String() string { return p.Metric + ": " + p.Text }

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// LintPrometheusText parses the classic Prometheus text exposition
// format and applies promlint-equivalent hygiene rules, stdlib-only:
//
//   - metric and label names match the Prometheus data model charset,
//     and no label starts with the reserved "__" prefix;
//   - every sample is preceded by a # TYPE declaration, declared once;
//   - counters end in _total, and _total is used only by counters
//     (histogram _count/_sum/_bucket series are exempt by structure);
//   - no metric name carries a unit the type forbids (gauge/counter
//     named *_bucket/_count/_sum would collide with histograms);
//   - histogram series are coherent: cumulative _bucket counts are
//     non-decreasing in le order, an le="+Inf" bucket exists and
//     equals _count;
//   - no series (name + label set) appears twice;
//   - every value parses as a float.
//
// The scrape-path test feeds it everything /metrics serves, so a
// malformed series name introduced anywhere in the codebase fails CI.
func LintPrometheusText(r io.Reader) ([]LintProblem, error) {
	var probs []LintProblem
	addf := func(metric, format string, args ...any) {
		probs = append(probs, LintProblem{Metric: metric, Text: fmt.Sprintf(format, args...)})
	}

	types := map[string]string{}
	seen := map[string]bool{}
	// histogram bookkeeping: base -> label-set (minus le) -> buckets.
	type histSeries struct {
		buckets map[string]float64 // le -> value
		count   *float64
		sum     *float64
	}
	hists := map[string]map[string]*histSeries{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 4 && f[1] == "TYPE" {
				name, typ := f[2], f[3]
				if !metricNameRe.MatchString(name) {
					addf(name, "invalid metric name in TYPE declaration")
				}
				if _, dup := types[name]; dup {
					addf(name, "duplicate TYPE declaration")
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					addf(name, "unknown metric type %q", typ)
				}
				types[name] = typ
			}
			continue
		}

		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			addf("", "line %d: %v", lineNo, err)
			continue
		}
		if !metricNameRe.MatchString(name) {
			addf(name, "invalid metric name")
		}
		var labelKeys []string
		for _, kv := range labels {
			if !labelNameRe.MatchString(kv[0]) {
				addf(name, "invalid label name %q", kv[0])
			}
			if strings.HasPrefix(kv[0], "__") {
				addf(name, "label %q uses the reserved __ prefix", kv[0])
			}
			labelKeys = append(labelKeys, kv[0]+"="+kv[1])
		}
		sort.Strings(labelKeys)
		series := name + "{" + strings.Join(labelKeys, ",") + "}"
		if seen[series] {
			addf(name, "duplicate series %s", series)
		}
		seen[series] = true

		// Resolve the declaring metric family: histogram children
		// (_bucket/_sum/_count) belong to the base name's TYPE.
		family, suffix := name, ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, sfx)
			if base != name && types[base] == "histogram" {
				family, suffix = base, sfx
				break
			}
		}
		typ, declared := types[family]
		if !declared {
			addf(name, "sample without a preceding TYPE declaration")
		}
		if typ == "counter" && !strings.HasSuffix(name, "_total") {
			addf(name, "counter does not end in _total")
		}
		if strings.HasSuffix(name, "_total") && declared && typ != "counter" {
			addf(name, "non-counter (%s) named with _total suffix", typ)
		}
		if typ == "histogram" && suffix == "" {
			addf(name, "histogram sample is neither _bucket, _sum nor _count")
		}

		if typ == "histogram" && suffix != "" {
			var le string
			var rest []string
			for _, kv := range labels {
				if kv[0] == "le" {
					le = kv[1]
				} else {
					rest = append(rest, kv[0]+"="+kv[1])
				}
			}
			sort.Strings(rest)
			key := strings.Join(rest, ",")
			if hists[family] == nil {
				hists[family] = map[string]*histSeries{}
			}
			hs := hists[family][key]
			if hs == nil {
				hs = &histSeries{buckets: map[string]float64{}}
				hists[family][key] = hs
			}
			switch suffix {
			case "_bucket":
				if le == "" {
					addf(name, "histogram bucket without le label")
				} else {
					hs.buckets[le] = value
				}
			case "_count":
				v := value
				hs.count = &v
			case "_sum":
				v := value
				hs.sum = &v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return probs, fmt.Errorf("obs: lint read: %w", err)
	}

	// Cross-series histogram coherence.
	var families []string
	for f := range hists {
		families = append(families, f)
	}
	sort.Strings(families)
	for _, f := range families {
		var keys []string
		for k := range hists[f] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			hs := hists[f][k]
			label := f
			if k != "" {
				label = f + "{" + k + "}"
			}
			inf, hasInf := hs.buckets["+Inf"]
			if !hasInf {
				addf(label, "histogram without le=\"+Inf\" bucket")
			}
			if hs.count == nil {
				addf(label, "histogram without _count series")
			} else if hasInf && inf != *hs.count {
				addf(label, "le=\"+Inf\" bucket (%g) != _count (%g)", inf, *hs.count)
			}
			if hs.sum == nil {
				addf(label, "histogram without _sum series")
			}
			// Cumulative buckets must be non-decreasing in le order.
			type bb struct {
				le string
				f  float64
				v  float64
			}
			var bs []bb
			for le, v := range hs.buckets {
				fv, err := parseLe(le)
				if err != nil {
					addf(label, "unparseable le %q", le)
					continue
				}
				bs = append(bs, bb{le, fv, v})
			}
			sort.Slice(bs, func(i, j int) bool { return bs[i].f < bs[j].f })
			for i := 1; i < len(bs); i++ {
				if bs[i].v < bs[i-1].v {
					addf(label, "bucket le=%q (%g) < bucket le=%q (%g): not cumulative",
						bs[i].le, bs[i].v, bs[i-1].le, bs[i-1].v)
				}
			}
		}
	}
	return probs, nil
}

func parseLe(le string) (float64, error) {
	if le == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(le, 64)
}

// parseSampleLine splits `name{k="v",...} value [timestamp]` into its
// parts. Label values keep their unescaped text.
func parseSampleLine(line string) (name string, labels [][2]string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		rest = rest[i+1:]
		for {
			rest = strings.TrimLeft(rest, " \t,")
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed labels in %q", line)
			}
			key := strings.TrimSpace(rest[:eq])
			rest = rest[eq+1:]
			if !strings.HasPrefix(rest, `"`) {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			rest = rest[1:]
			var val strings.Builder
			for {
				if rest == "" {
					return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
				}
				c := rest[0]
				rest = rest[1:]
				if c == '\\' && rest != "" {
					val.WriteByte(rest[0])
					rest = rest[1:]
					continue
				}
				if c == '"' {
					break
				}
				val.WriteByte(c)
			}
			labels = append(labels, [2]string{key, val.String()})
		}
	} else if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name = rest[:i]
		rest = rest[i:]
	} else {
		return "", nil, 0, fmt.Errorf("sample without value: %q", line)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value in %q: %v", line, err)
	}
	return name, labels, value, nil
}
