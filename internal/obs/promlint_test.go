package obs

import (
	"strings"
	"testing"
)

func lintString(t *testing.T, text string) []LintProblem {
	t.Helper()
	probs, err := LintPrometheusText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return probs
}

func problemTexts(probs []LintProblem) []string {
	out := make([]string, len(probs))
	for i, p := range probs {
		out[i] = p.String()
	}
	return out
}

func hasProblem(probs []LintProblem, substr string) bool {
	for _, p := range probs {
		if strings.Contains(p.String(), substr) {
			return true
		}
	}
	return false
}

func TestLintCleanRegistryOutput(t *testing.T) {
	// Everything the real registry serializes must lint clean.
	reg := NewRegistry()
	reg.Counter("gpustl_requests_total").Add(3)
	reg.Counter(`gpustl_usage_fault_blocks_total{tenant="acme"}`).Add(10)
	reg.Gauge(`gpustl_slo_burn_rate{slo="x",window="5m0s"}`).Set(0.5)
	h := reg.Histogram("gpustl_latency_seconds", []float64{0.01, 0.1, 1})
	h.Observe(0.05)
	h.Observe(2)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if probs := lintString(t, sb.String()); len(probs) != 0 {
		t.Errorf("registry output has lint problems:\n%s\ntext:\n%s",
			strings.Join(problemTexts(probs), "\n"), sb.String())
	}
}

func TestLintDetectsProblems(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string // substring of an expected problem
	}{
		{"bad metric name", "# TYPE bad-name counter\nbad-name 1\n", "invalid metric name"},
		{"no type declaration", "orphan_total 3\n", "without a preceding TYPE"},
		{"counter sans _total", "# TYPE hits counter\nhits 3\n", "does not end in _total"},
		{"gauge named _total", "# TYPE g_total gauge\ng_total 3\n", "non-counter (gauge) named with _total"},
		{"duplicate type", "# TYPE a_total counter\n# TYPE a_total counter\na_total 1\n", "duplicate TYPE"},
		{"unknown type", "# TYPE x widget\nx 1\n", "unknown metric type"},
		{"duplicate series", "# TYPE a_total counter\na_total{k=\"v\"} 1\na_total{k=\"v\"} 2\n", "duplicate series"},
		{"reserved label", "# TYPE a_total counter\na_total{__name__=\"x\"} 1\n", "reserved __ prefix"},
		{"bad value", "# TYPE a_total counter\na_total one\n", "unparseable value"},
		{"hist missing +Inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_count 2\nh_sum 1\n", `without le="+Inf"`},
		{"hist missing count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\n", "without _count"},
		{"hist missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n", "without _sum"},
		{"hist inf != count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 3\nh_sum 1\n", "!= _count"},
		{"hist not cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\nh_sum 1\n", "not cumulative"},
		{"hist stray sample", "# TYPE h histogram\nh 2\n", "neither _bucket"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			probs := lintString(t, tc.text)
			if !hasProblem(probs, tc.want) {
				t.Errorf("lint missed %q; got: %v", tc.want, problemTexts(probs))
			}
		})
	}
}

func TestLintPerLabelSetHistograms(t *testing.T) {
	// Histogram coherence is checked per label set: one shard's buckets
	// must not be mixed with another's.
	text := `# TYPE h histogram
h_bucket{shard="0",le="1"} 1
h_bucket{shard="0",le="+Inf"} 2
h_count{shard="0"} 2
h_sum{shard="0"} 1.5
h_bucket{shard="1",le="1"} 7
h_bucket{shard="1",le="+Inf"} 7
h_count{shard="1"} 7
h_sum{shard="1"} 3
`
	if probs := lintString(t, text); len(probs) != 0 {
		t.Errorf("coherent per-shard histograms flagged: %v", problemTexts(probs))
	}

	// Break only shard 1.
	broken := strings.Replace(text, `h_count{shard="1"} 7`, `h_count{shard="1"} 9`, 1)
	probs := lintString(t, broken)
	if !hasProblem(probs, `shard=1`) {
		t.Errorf("broken shard-1 histogram not attributed: %v", problemTexts(probs))
	}
	if hasProblem(probs, `shard=0`) {
		t.Errorf("healthy shard-0 histogram flagged: %v", problemTexts(probs))
	}
}
