package obs

import (
	"context"
	"fmt"
	"html"
	"net/http"
	"sort"
	"sync"
	"time"
)

// SLO declares one service-level objective as a pair of cumulative
// samplers: Total counts eligible events, Bad counts the ones that
// violated the objective. Both must be monotonically non-decreasing
// (counter semantics) — the engine differentiates them over time
// windows, so absolute values only matter as deltas.
type SLO struct {
	// Name labels the gpustl_slo_* series (e.g. "campaign_latency").
	Name string
	// Description is shown on /debug/slo.
	Description string
	// Objective is the target good-event ratio in [0,1), e.g. 0.99.
	// The error budget is 1-Objective.
	Objective float64
	// Bad and Total sample the cumulative bad/eligible event counts.
	Bad, Total func() float64
}

// WindowBurn is one window's view of an SLO: the bad-event ratio over
// the window and the burn rate — bad ratio divided by the error
// budget. Burn 1.0 consumes exactly the budget over the window; a
// sustained burn of 14 on the 1h window is the classic page-now
// threshold.
type WindowBurn struct {
	Window   time.Duration `json:"window"`
	Events   float64       `json:"events"`
	BadRatio float64       `json:"bad_ratio"`
	BurnRate float64       `json:"burn_rate"`
}

// SLOStatus is one objective's full multi-window state, the unit of
// the /debug/slo page.
type SLOStatus struct {
	Name            string       `json:"name"`
	Description     string       `json:"description"`
	Objective       float64      `json:"objective"`
	TotalEvents     float64      `json:"total_events"`
	BadEvents       float64      `json:"bad_events"`
	BudgetRemaining float64      `json:"budget_remaining"`
	Windows         []WindowBurn `json:"windows"`
}

// DefSLOWindows are the multi-window burn-rate horizons: the short
// windows catch fast burns, the long ones slow leaks.
func DefSLOWindows() []time.Duration {
	return []time.Duration{5 * time.Minute, 30 * time.Minute, time.Hour, 6 * time.Hour}
}

type sloSample struct {
	t   time.Time
	bad []float64
	tot []float64
}

// SLOEngine periodically samples every declared objective, keeps a
// time-indexed ring of the cumulative counts, and derives multi-window
// burn rates published as gpustl_slo_* gauges on the registry plus a
// human /debug/slo page. A nil engine is a no-op.
type SLOEngine struct {
	reg     *Registry
	slos    []SLO
	windows []time.Duration
	now     func() time.Time

	mu      sync.Mutex
	samples []sloSample
}

// NewSLOEngine builds an engine over the given objectives. Empty
// windows default to DefSLOWindows. Call Sample on a ticker (Run does
// this) — the engine never samples spontaneously.
func NewSLOEngine(reg *Registry, slos []SLO, windows ...time.Duration) *SLOEngine {
	if len(windows) == 0 {
		windows = DefSLOWindows()
	}
	sorted := append([]time.Duration(nil), windows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return &SLOEngine{reg: reg, slos: slos, windows: sorted, now: time.Now}
}

// Sample takes one observation of every objective, trims the ring to
// the longest window, and refreshes the burn-rate gauges.
func (e *SLOEngine) Sample() {
	if e == nil {
		return
	}
	now := e.now()
	s := sloSample{t: now, bad: make([]float64, len(e.slos)), tot: make([]float64, len(e.slos))}
	for i, o := range e.slos {
		if o.Bad != nil {
			s.bad[i] = o.Bad()
		}
		if o.Total != nil {
			s.tot[i] = o.Total()
		}
	}
	e.mu.Lock()
	e.samples = append(e.samples, s)
	horizon := now.Add(-e.windows[len(e.windows)-1] - time.Minute)
	trim := 0
	for trim < len(e.samples)-1 && e.samples[trim].t.Before(horizon) {
		trim++
	}
	e.samples = e.samples[trim:]
	e.mu.Unlock()
	e.publish()
}

// Run samples every interval until ctx is done.
func (e *SLOEngine) Run(ctx context.Context, interval time.Duration) {
	if e == nil {
		return
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		e.Sample()
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// windowDelta returns the bad/total deltas for slo index i over the
// window ending at the newest sample.
func (e *SLOEngine) windowDelta(i int, w time.Duration) (bad, tot, events float64) {
	last := e.samples[len(e.samples)-1]
	cut := last.t.Add(-w)
	// Oldest sample still inside the window; if the ring is younger
	// than the window, the first sample stands in (partial window).
	first := e.samples[0]
	for _, s := range e.samples {
		if !s.t.Before(cut) {
			first = s
			break
		}
	}
	bad = last.bad[i] - first.bad[i]
	tot = last.tot[i] - first.tot[i]
	if bad < 0 {
		bad = 0 // counter reset (process restart feeding the sampler)
	}
	if tot < 0 {
		tot = 0
	}
	return bad, tot, tot
}

func (e *SLOEngine) statusLocked() []SLOStatus {
	out := make([]SLOStatus, 0, len(e.slos))
	if len(e.samples) == 0 {
		return out
	}
	last := e.samples[len(e.samples)-1]
	for i, o := range e.slos {
		st := SLOStatus{
			Name: o.Name, Description: o.Description, Objective: o.Objective,
			TotalEvents: last.tot[i], BadEvents: last.bad[i],
		}
		budget := 1 - o.Objective
		for _, w := range e.windows {
			bad, tot, ev := e.windowDelta(i, w)
			wb := WindowBurn{Window: w, Events: ev}
			if tot > 0 {
				wb.BadRatio = bad / tot
				if budget > 0 {
					wb.BurnRate = wb.BadRatio / budget
				}
			}
			st.Windows = append(st.Windows, wb)
		}
		// Budget remaining over the longest window: 1 means untouched,
		// 0 means fully burned, negative means out of budget.
		if n := len(st.Windows); n > 0 && budget > 0 {
			st.BudgetRemaining = 1 - st.Windows[n-1].BadRatio/budget
		}
		out = append(out, st)
	}
	return out
}

// Status returns every objective's current multi-window state.
func (e *SLOEngine) Status() []SLOStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.statusLocked()
}

// publish refreshes the gpustl_slo_* gauges from the newest sample.
func (e *SLOEngine) publish() {
	e.mu.Lock()
	stats := e.statusLocked()
	e.mu.Unlock()
	for _, st := range stats {
		e.reg.Gauge(fmt.Sprintf(`gpustl_slo_objective{slo=%q}`, st.Name)).Set(st.Objective)
		e.reg.Gauge(fmt.Sprintf(`gpustl_slo_error_budget_remaining{slo=%q}`, st.Name)).Set(st.BudgetRemaining)
		for _, wb := range st.Windows {
			e.reg.Gauge(fmt.Sprintf(`gpustl_slo_burn_rate{slo=%q,window=%q}`, st.Name, wb.Window)).Set(wb.BurnRate)
		}
	}
}

// Handler serves the human-readable /debug/slo page.
func (e *SLOEngine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if e == nil {
			http.Error(w, "slo engine not configured", http.StatusNotFound)
			return
		}
		stats := e.Status()
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, "<!doctype html><title>gpustl SLOs</title><style>body{font:14px monospace}table{border-collapse:collapse}td,th{border:1px solid #999;padding:4px 8px;text-align:right}th:first-child,td:first-child{text-align:left}.burn{color:#b00;font-weight:bold}</style>")
		fmt.Fprintf(w, "<h1>SLO burn rates</h1>")
		if len(stats) == 0 {
			fmt.Fprintf(w, "<p>no samples yet</p>")
			return
		}
		for _, st := range stats {
			fmt.Fprintf(w, "<h2>%s</h2><p>%s — objective %.4g, budget remaining %.1f%%, lifetime %g/%g bad</p>",
				html.EscapeString(st.Name), html.EscapeString(st.Description),
				st.Objective, 100*st.BudgetRemaining, st.BadEvents, st.TotalEvents)
			fmt.Fprintf(w, "<table><tr><th>window</th><th>events</th><th>bad ratio</th><th>burn rate</th></tr>")
			for _, wb := range st.Windows {
				cls := ""
				if wb.BurnRate >= 1 {
					cls = ` class="burn"`
				}
				fmt.Fprintf(w, "<tr><td>%v</td><td>%g</td><td>%.5f</td><td%s>%.2f</td></tr>",
					wb.Window, wb.Events, wb.BadRatio, cls, wb.BurnRate)
			}
			fmt.Fprintf(w, "</table>")
		}
	})
}

// CounterSeriesValue samples one exact counter series.
func CounterSeriesValue(reg *Registry, series string) func() float64 {
	return func() float64 { return float64(reg.Counter(series).Value()) }
}

// CounterSumValue samples the sum of every counter series sharing a
// base name, regardless of labels — e.g. a shed counter labeled per
// pool.
func CounterSumValue(reg *Registry, base string) func() float64 {
	return func() float64 {
		if reg == nil {
			return 0
		}
		reg.mu.RLock()
		defer reg.mu.RUnlock()
		var sum float64
		for name, c := range reg.counters {
			if b, _ := splitSeries(name); b == base {
				sum += float64(c.Value())
			}
		}
		return sum
	}
}

// LatencySLO builds an objective over an existing histogram series:
// an observation above threshold (seconds) is a bad event. The bad
// count is derived from the histogram's cumulative buckets — the
// smallest bucket bound >= threshold stands in for the threshold, so
// pick a threshold on a bucket boundary for exact accounting.
func LatencySLO(reg *Registry, name, series string, threshold, objective float64, desc string) SLO {
	return SLO{
		Name: name, Description: desc, Objective: objective,
		Total: func() float64 {
			h := histogramSeries(reg, series)
			if h == nil {
				return 0
			}
			return float64(h.Count())
		},
		Bad: func() float64 {
			h := histogramSeries(reg, series)
			if h == nil {
				return 0
			}
			// Buckets whose upper bound is <= threshold count as good;
			// everything else (including +Inf) is bad.
			var good uint64
			for i, b := range h.bounds {
				if b <= threshold {
					good += h.counts[i].Load()
				}
			}
			total := h.Count()
			if good > total {
				good = total
			}
			return float64(total - good)
		},
	}
}

// histogramSeries looks up an exact histogram series without creating
// it (Registry.Histogram would need bounds).
func histogramSeries(reg *Registry, series string) *Histogram {
	if reg == nil {
		return nil
	}
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	return reg.hists[series]
}

// RatioSLO builds an objective from explicit bad/total samplers.
func RatioSLO(name string, objective float64, bad, total func() float64, desc string) SLO {
	return SLO{Name: name, Description: desc, Objective: objective, Bad: bad, Total: total}
}
