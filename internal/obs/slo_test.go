package obs

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeClockEngine pins the engine to a controllable clock so window
// math is exact.
func fakeClockEngine(reg *Registry, slos []SLO, windows ...time.Duration) (*SLOEngine, *time.Time) {
	e := NewSLOEngine(reg, slos, windows...)
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	e.now = func() time.Time { return now }
	return e, &now
}

func TestSLOBurnRateMath(t *testing.T) {
	reg := NewRegistry()
	var bad, total float64
	slo := RatioSLO("shed", 0.99, func() float64 { return bad }, func() float64 { return total }, "submit shed rate")
	e, now := fakeClockEngine(reg, []SLO{slo}, 5*time.Minute, time.Hour)

	e.Sample() // baseline at t0

	// Over the next 5 minutes: 100 events, 1 bad. Budget is 1%, so the
	// bad ratio of 1% is a burn rate of exactly 1.0.
	*now = now.Add(5 * time.Minute)
	total, bad = 100, 1
	e.Sample()

	st := e.Status()
	if len(st) != 1 {
		t.Fatalf("got %d statuses, want 1", len(st))
	}
	s := st[0]
	if s.Name != "shed" || s.Objective != 0.99 {
		t.Fatalf("status identity wrong: %+v", s)
	}
	if s.TotalEvents != 100 || s.BadEvents != 1 {
		t.Errorf("lifetime counts = %g/%g, want 1/100", s.BadEvents, s.TotalEvents)
	}
	if len(s.Windows) != 2 {
		t.Fatalf("got %d windows, want 2", len(s.Windows))
	}
	for _, wb := range s.Windows {
		if wb.Events != 100 {
			t.Errorf("window %v events = %g, want 100", wb.Window, wb.Events)
		}
		if got := wb.BadRatio; got != 0.01 {
			t.Errorf("window %v bad ratio = %g, want 0.01", wb.Window, got)
		}
		if got := wb.BurnRate; got < 0.999 || got > 1.001 {
			t.Errorf("window %v burn rate = %g, want 1.0", wb.Window, got)
		}
	}
	// Burn exactly at budget → budget remaining 0 over the longest window.
	if s.BudgetRemaining < -0.001 || s.BudgetRemaining > 0.001 {
		t.Errorf("budget remaining = %g, want 0", s.BudgetRemaining)
	}

	// Gauges were published.
	if got := reg.Gauge(`gpustl_slo_objective{slo="shed"}`).Value(); got != 0.99 {
		t.Errorf("objective gauge = %g, want 0.99", got)
	}
	burn := reg.Gauge(fmt.Sprintf(`gpustl_slo_burn_rate{slo=%q,window=%q}`, "shed", 5*time.Minute)).Value()
	if burn < 0.999 || burn > 1.001 {
		t.Errorf("burn-rate gauge = %g, want 1.0", burn)
	}
}

func TestSLOWindowsDifferentiate(t *testing.T) {
	// A burst of bad events long ago must fall out of the short window
	// while still burning the long one.
	reg := NewRegistry()
	var bad, total float64
	slo := RatioSLO("r", 0.9, func() float64 { return bad }, func() float64 { return total }, "")
	e, now := fakeClockEngine(reg, []SLO{slo}, 5*time.Minute, time.Hour)

	e.Sample()
	*now = now.Add(time.Minute)
	total, bad = 100, 50 // the burst
	e.Sample()
	// 30 quiet minutes: only good events.
	for i := 0; i < 30; i++ {
		*now = now.Add(time.Minute)
		total += 10
		e.Sample()
	}

	s := e.Status()[0]
	short, long := s.Windows[0], s.Windows[1]
	if short.Window != 5*time.Minute || long.Window != time.Hour {
		t.Fatalf("window order wrong: %+v", s.Windows)
	}
	if short.BadRatio != 0 {
		t.Errorf("short-window bad ratio = %g, want 0 (burst aged out)", short.BadRatio)
	}
	if long.BadRatio <= 0.1 {
		t.Errorf("long-window bad ratio = %g, want > 0.1 (burst still inside)", long.BadRatio)
	}
	if long.BurnRate <= 1 {
		t.Errorf("long-window burn rate = %g, want > 1", long.BurnRate)
	}
}

func TestSLOCounterResetTolerated(t *testing.T) {
	reg := NewRegistry()
	var bad, total float64
	slo := RatioSLO("r", 0.99, func() float64 { return bad }, func() float64 { return total }, "")
	e, now := fakeClockEngine(reg, []SLO{slo}, 5*time.Minute)

	total, bad = 1000, 10
	e.Sample()
	*now = now.Add(time.Minute)
	total, bad = 5, 0 // the feeding process restarted
	e.Sample()

	s := e.Status()[0]
	if wb := s.Windows[0]; wb.BadRatio != 0 || wb.BurnRate != 0 {
		t.Errorf("counter reset produced ratio %g burn %g, want 0/0", wb.BadRatio, wb.BurnRate)
	}
}

func TestLatencySLOBucketAccounting(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("req_seconds", []float64{0.1, 1, 10})
	slo := LatencySLO(reg, "latency", "req_seconds", 1, 0.9, "p90 under 1s")
	e, now := fakeClockEngine(reg, []SLO{slo}, 5*time.Minute)

	e.Sample()
	*now = now.Add(time.Minute)
	for i := 0; i < 8; i++ {
		h.Observe(0.05) // good
	}
	h.Observe(5)  // bad: above the 1s threshold
	h.Observe(50) // bad: +Inf bucket
	e.Sample()

	s := e.Status()[0]
	if s.TotalEvents != 10 || s.BadEvents != 2 {
		t.Fatalf("latency SLO counts bad/total = %g/%g, want 2/10", s.BadEvents, s.TotalEvents)
	}
	wb := s.Windows[0]
	if wb.BadRatio != 0.2 {
		t.Errorf("bad ratio = %g, want 0.2", wb.BadRatio)
	}
	// 20% bad against a 10% budget: burn rate 2.
	if wb.BurnRate < 1.999 || wb.BurnRate > 2.001 {
		t.Errorf("burn rate = %g, want 2.0", wb.BurnRate)
	}
}

func TestLatencySLOMissingSeries(t *testing.T) {
	reg := NewRegistry()
	slo := LatencySLO(reg, "latency", "absent_seconds", 1, 0.9, "")
	if got := slo.Total(); got != 0 {
		t.Errorf("Total on absent histogram = %g, want 0", got)
	}
	if got := slo.Bad(); got != 0 {
		t.Errorf("Bad on absent histogram = %g, want 0", got)
	}
}

func TestCounterSumValue(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`shed_total{pool="a"}`).Add(3)
	reg.Counter(`shed_total{pool="b"}`).Add(4)
	reg.Counter(`other_total`).Add(100)
	if got := CounterSumValue(reg, "shed_total")(); got != 7 {
		t.Errorf("CounterSumValue = %g, want 7", got)
	}
	if got := CounterSumValue(nil, "shed_total")(); got != 0 {
		t.Errorf("CounterSumValue on nil registry = %g, want 0", got)
	}
}

func TestSLOHandler(t *testing.T) {
	reg := NewRegistry()
	var bad, total float64
	slo := RatioSLO("verify-mismatch", 0.999,
		func() float64 { return bad }, func() float64 { return total },
		"verified shard results disagreeing with the worker")
	e, now := fakeClockEngine(reg, []SLO{slo}, 5*time.Minute)

	// Before any sample: page renders, says so.
	rr := httptest.NewRecorder()
	e.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/slo", nil))
	if !strings.Contains(rr.Body.String(), "no samples yet") {
		t.Errorf("empty engine page missing placeholder: %s", rr.Body.String())
	}

	e.Sample()
	*now = now.Add(time.Minute)
	total, bad = 100, 50 // way out of budget → the burn cell goes red
	e.Sample()

	rr = httptest.NewRecorder()
	e.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/slo", nil))
	body := rr.Body.String()
	for _, want := range []string{"verify-mismatch", "disagreeing", `class="burn"`, "0.999"} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/slo missing %q", want)
		}
	}
}

func TestSLOEngineNilSafe(t *testing.T) {
	var e *SLOEngine
	e.Sample()
	if st := e.Status(); st != nil {
		t.Errorf("nil engine Status = %v, want nil", st)
	}
	rr := httptest.NewRecorder()
	e.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/slo", nil))
	if rr.Code != 404 {
		t.Errorf("nil engine handler status = %d, want 404", rr.Code)
	}
}
