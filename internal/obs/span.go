package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"gpustl/internal/journal"
)

// Event is one finished (or flushed-while-open) span, one line of the
// JSONL trace file. The hierarchy campaign -> ptp -> stage -> shard is
// encoded through Parent IDs; StartNS is Unix nanoseconds so traces
// from different processes line up on one clock (modulo the skew
// stltrace estimates and corrects). Trace is the 128-bit campaign
// trace ID in hex; Remote marks a span whose Parent lives in another
// process (the server→worker RPC edges the skew estimator keys on).
type Event struct {
	ID     uint64            `json:"id"`
	Parent uint64            `json:"parent,omitempty"`
	Trace  string            `json:"trace,omitempty"`
	Remote bool              `json:"remote,omitempty"`
	Kind   string            `json:"kind"`
	Name   string            `json:"name"`
	StartN int64             `json:"start_ns"`
	DurN   int64             `json:"dur_ns"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Start returns the span's start time.
func (e Event) Start() time.Time { return time.Unix(0, e.StartN) }

// Duration returns the span's duration.
func (e Event) Duration() time.Duration { return time.Duration(e.DurN) }

// The span kinds the compaction pipeline emits.
const (
	KindCampaign = "campaign"
	KindPTP      = "ptp"
	KindStage    = "stage"
	KindShard    = "shard"
)

// Tracer collects hierarchical spans in memory and flushes them as a
// JSONL trace file through the journal's atomic-write helper, so a
// trace file on disk is always a complete, parseable snapshot — never
// a torn tail. A nil Tracer (and the nil Spans it hands out) is a
// no-op, so callers wire tracing unconditionally.
//
// Span IDs are random 64-bit values (not a process-local sequence), so
// parent references stay unambiguous when stltrace merges trace files
// from several processes into one campaign waterfall.
type Tracer struct {
	path string
	opt  TracerOptions

	mu     sync.Mutex
	events []Event
	open   map[uint64]*Span
}

// TracerOptions bound a long-running daemon's trace file. With
// MaxBytes set, a Flush whose snapshot exceeds the cap rotates the
// ended events out to path.1 (cascading path.1 -> path.2 ... and
// keeping at most KeepFiles rotations) and restarts the live file with
// only the still-open spans. Zero values mean unbounded / keep 2.
type TracerOptions struct {
	// MaxBytes rotates the trace file when a flushed snapshot exceeds
	// this size. 0 = never rotate (the stlcompact one-campaign default).
	MaxBytes int64
	// KeepFiles is how many rotated files (path.1 .. path.N) survive.
	// 0 means 2 when rotation is enabled.
	KeepFiles int
}

// NewTracer creates a tracer that Flush writes to path.
func NewTracer(path string) *Tracer {
	return NewTracerOptions(path, TracerOptions{})
}

// NewTracerOptions creates a tracer with explicit file-rotation bounds.
func NewTracerOptions(path string, opt TracerOptions) *Tracer {
	if opt.MaxBytes > 0 && opt.KeepFiles <= 0 {
		opt.KeepFiles = 2
	}
	return &Tracer{path: path, opt: opt, open: map[uint64]*Span{}}
}

// Span is one in-flight operation. End closes it; Annotate attaches
// string attributes. All methods are safe on a nil receiver.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	trace  TraceID
	remote bool
	kind   string
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs map[string]string
	ended bool
}

// Start opens a span under parent (nil = root). A root span mints a
// fresh 128-bit trace ID; a child inherits its parent's, even when the
// parent belongs to another tracer (the coordinator parenting its
// shard spans on the runner's PTP span). On a nil tracer it returns
// nil, which is itself a valid no-op span.
func (t *Tracer) Start(parent *Span, kind, name string) *Span {
	return t.StartAt(parent, kind, name, time.Now())
}

// StartAt is Start with an explicit start time, for spans whose
// beginning is only known retroactively (the server's queue-wait span
// covers submit -> lease, but is opened at lease time).
func (t *Tracer) StartAt(parent *Span, kind, name string, start time.Time) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, id: newSpanID(), kind: kind, name: name, start: start}
	if parent != nil {
		s.parent = parent.id
		s.trace = parent.trace
	}
	if s.trace.IsZero() {
		s.trace = NewTraceID()
	}
	t.mu.Lock()
	t.open[s.id] = s
	t.mu.Unlock()
	return s
}

// ID returns the span id (0 on nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Annotate attaches a key=value attribute to the span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// End closes the span, recording its event. Ending twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	ev := s.eventLocked(time.Now())
	s.mu.Unlock()

	t := s.tr
	t.mu.Lock()
	delete(t.open, s.id)
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// eventLocked builds the span's event; s.mu must be held.
func (s *Span) eventLocked(end time.Time) Event {
	var attrs map[string]string
	if len(s.attrs) > 0 {
		attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			attrs[k] = v
		}
	}
	var trace string
	if !s.trace.IsZero() {
		trace = s.trace.String()
	}
	return Event{
		ID: s.id, Parent: s.parent, Trace: trace, Remote: s.remote,
		Kind: s.kind, Name: s.name,
		StartN: s.start.UnixNano(), DurN: int64(end.Sub(s.start)), Attrs: attrs,
	}
}

// Flush writes every recorded event — plus a snapshot of still-open
// spans, marked interrupted=true, so an interrupted campaign remains
// analyzable — as JSONL, atomically and durably (temp file, fsync,
// rename, directory fsync). Flush can be called repeatedly; open spans
// stay open and are finalized by their own End.
//
// With TracerOptions.MaxBytes set, a snapshot that exceeds the cap is
// rotated: the full snapshot lands in path.1 (cascading older
// rotations to path.2.. and dropping any past KeepFiles), the ended
// events are released from memory, and the live file restarts with
// only the still-open spans. A long-lived stlserver therefore holds
// and writes O(MaxBytes) trace state, not one unbounded file.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	events := append([]Event(nil), t.events...)
	now := time.Now()
	var openEvs []Event
	for _, s := range t.open {
		s.mu.Lock()
		ev := s.eventLocked(now)
		s.mu.Unlock()
		if ev.Attrs == nil {
			ev.Attrs = map[string]string{}
		}
		ev.Attrs["interrupted"] = "true"
		openEvs = append(openEvs, ev)
	}
	t.mu.Unlock()

	sort.Slice(openEvs, func(i, j int) bool { return openEvs[i].ID < openEvs[j].ID })
	buf, err := encodeEvents(append(events, openEvs...))
	if err != nil {
		return err
	}
	if t.opt.MaxBytes > 0 && int64(buf.Len()) > t.opt.MaxBytes {
		return t.rotate(buf, openEvs, len(events))
	}
	if err := journal.WriteFileAtomic(t.path, buf.Bytes()); err != nil {
		return fmt.Errorf("obs: writing trace %s: %w", t.path, err)
	}
	return nil
}

func encodeEvents(events []Event) (*bytes.Buffer, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return nil, fmt.Errorf("obs: encoding trace event %d: %w", ev.ID, err)
		}
	}
	return &buf, nil
}

// rotate moves the oversized snapshot aside and restarts the live file
// with only the open spans. nEnded is how many leading events of the
// snapshot were ended at capture time; exactly those are released from
// memory (events ended after the capture stay for the next flush).
func (t *Tracer) rotate(full *bytes.Buffer, openEvs []Event, nEnded int) error {
	// Cascade path.N-1 -> path.N, oldest first; the one past KeepFiles
	// is simply overwritten by the cascade or removed.
	os.Remove(fmt.Sprintf("%s.%d", t.path, t.opt.KeepFiles))
	for n := t.opt.KeepFiles; n >= 2; n-- {
		from := fmt.Sprintf("%s.%d", t.path, n-1)
		if _, err := os.Stat(from); err == nil {
			os.Rename(from, fmt.Sprintf("%s.%d", t.path, n))
		}
	}
	if err := journal.WriteFileAtomic(t.path+".1", full.Bytes()); err != nil {
		return fmt.Errorf("obs: rotating trace %s: %w", t.path, err)
	}
	t.mu.Lock()
	t.events = append([]Event(nil), t.events[nEnded:]...)
	t.mu.Unlock()
	live, err := encodeEvents(openEvs)
	if err != nil {
		return err
	}
	if err := journal.WriteFileAtomic(t.path, live.Bytes()); err != nil {
		return fmt.Errorf("obs: writing trace %s: %w", t.path, err)
	}
	return nil
}

// Path returns the trace file path ("" on nil).
func (t *Tracer) Path() string {
	if t == nil {
		return ""
	}
	return t.path
}

// Events returns a copy of the recorded (ended) events.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// ReadEvents parses a JSONL trace file written by Flush.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return out, nil
}

// ReadTraceFile reads a JSONL trace file from disk.
func ReadTraceFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEvents(f)
}

// StageStat aggregates the spans of one name within one kind.
type StageStat struct {
	Name  string
	Count int
	Total time.Duration
	Min   time.Duration
	Max   time.Duration
}

// Mean returns the average span duration.
func (s StageStat) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// TraceSummary is the per-stage latency and critical-path view of one
// campaign trace.
type TraceSummary struct {
	// Wall is the campaign span's duration (the longest root span when
	// no campaign span exists).
	Wall time.Duration
	// Stages aggregates stage spans by name, in first-seen order.
	Stages []StageStat
	// PTPs aggregates ptp spans by name.
	PTPs []StageStat
	// CriticalPTP is the ptp span with the largest duration — the
	// critical path of a serial campaign.
	CriticalPTP string
	// StageTotal is the sum of all stage span durations; in a serial
	// campaign it accounts for (almost all of) Wall.
	StageTotal time.Duration
	// Interrupted counts spans flushed while still open.
	Interrupted int
}

// Summarize folds a trace's events into the per-stage summary.
func Summarize(events []Event) *TraceSummary {
	sum := &TraceSummary{}
	agg := func(list []StageStat, idx map[string]int, ev Event) []StageStat {
		i, ok := idx[ev.Name]
		if !ok {
			i = len(list)
			idx[ev.Name] = i
			list = append(list, StageStat{Name: ev.Name, Min: ev.Duration()})
		}
		st := &list[i]
		st.Count++
		st.Total += ev.Duration()
		if ev.Duration() < st.Min {
			st.Min = ev.Duration()
		}
		if ev.Duration() > st.Max {
			st.Max = ev.Duration()
		}
		return list
	}
	stageIdx, ptpIdx := map[string]int{}, map[string]int{}
	var critical time.Duration
	for _, ev := range events {
		if ev.Attrs["interrupted"] == "true" {
			sum.Interrupted++
		}
		switch ev.Kind {
		case KindCampaign:
			if ev.Duration() > sum.Wall {
				sum.Wall = ev.Duration()
			}
		case KindPTP:
			sum.PTPs = agg(sum.PTPs, ptpIdx, ev)
			if ev.Duration() > critical {
				critical = ev.Duration()
				sum.CriticalPTP = ev.Name
			}
		case KindStage:
			sum.Stages = agg(sum.Stages, stageIdx, ev)
			sum.StageTotal += ev.Duration()
		}
	}
	return sum
}

// Render writes the summary as a human-readable table.
func (s *TraceSummary) Render(w io.Writer) {
	fmt.Fprintf(w, "TRACE SUMMARY  wall %v  stage-total %v", s.Wall.Round(time.Millisecond), s.StageTotal.Round(time.Millisecond))
	if s.Wall > 0 {
		fmt.Fprintf(w, " (%.1f%% of wall)", 100*float64(s.StageTotal)/float64(s.Wall))
	}
	if s.Interrupted > 0 {
		fmt.Fprintf(w, "  [%d interrupted span(s)]", s.Interrupted)
	}
	fmt.Fprintln(w)
	if s.CriticalPTP != "" {
		fmt.Fprintf(w, "critical path: PTP %s\n", s.CriticalPTP)
	}
	fmt.Fprintf(w, "%-12s %6s %12s %12s %12s %12s\n", "stage", "count", "total", "mean", "min", "max")
	for _, st := range s.Stages {
		fmt.Fprintf(w, "%-12s %6d %12v %12v %12v %12v\n",
			st.Name, st.Count, st.Total.Round(time.Microsecond), st.Mean().Round(time.Microsecond),
			st.Min.Round(time.Microsecond), st.Max.Round(time.Microsecond))
	}
}
