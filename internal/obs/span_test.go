package obs

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestTracerFlushRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr := NewTracer(path)

	camp := tr.Start(nil, KindCampaign, "campaign")
	ptp := tr.Start(camp, KindPTP, "ptp_0")
	st := tr.Start(ptp, KindStage, "faultsim")
	st.Annotate("shards", "4")
	st.End()
	ptp.End()
	camp.End()

	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	byName := map[string]Event{}
	for _, ev := range events {
		byName[ev.Name] = ev
	}
	if byName["ptp_0"].Parent != byName["campaign"].ID {
		t.Errorf("ptp parent = %d, want campaign id %d", byName["ptp_0"].Parent, byName["campaign"].ID)
	}
	if byName["faultsim"].Parent != byName["ptp_0"].ID {
		t.Errorf("stage parent = %d, want ptp id %d", byName["faultsim"].Parent, byName["ptp_0"].ID)
	}
	if byName["faultsim"].Attrs["shards"] != "4" {
		t.Errorf("stage attrs = %v, want shards=4", byName["faultsim"].Attrs)
	}
	if byName["campaign"].Duration() < byName["faultsim"].Duration() {
		t.Error("campaign span shorter than nested stage span")
	}
}

func TestTracerFlushMarksOpenSpansInterrupted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr := NewTracer(path)
	camp := tr.Start(nil, KindCampaign, "campaign")
	st := tr.Start(camp, KindStage, "trace")
	st.End()
	// camp still open: a SIGINT-style flush must snapshot it.
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	var open int
	for _, ev := range events {
		if ev.Attrs["interrupted"] == "true" {
			open++
			if ev.Kind != KindCampaign {
				t.Errorf("interrupted span is %q, want campaign", ev.Kind)
			}
		}
	}
	if open != 1 {
		t.Fatalf("interrupted spans = %d, want 1", open)
	}

	// The span stays open; ending it and re-flushing replaces the
	// snapshot with the final event.
	camp.End()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err = ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.Attrs["interrupted"] == "true" {
			t.Fatalf("span still marked interrupted after End+Flush: %+v", ev)
		}
	}
	if len(events) != 2 {
		t.Fatalf("got %d events after final flush, want 2", len(events))
	}
}

func TestSummarize(t *testing.T) {
	ms := func(d int) int64 { return (time.Duration(d) * time.Millisecond).Nanoseconds() }
	events := []Event{
		{ID: 1, Kind: KindCampaign, Name: "campaign", DurN: ms(100)},
		{ID: 2, Parent: 1, Kind: KindPTP, Name: "ptp_a", DurN: ms(60)},
		{ID: 3, Parent: 2, Kind: KindStage, Name: "faultsim", DurN: ms(40)},
		{ID: 4, Parent: 2, Kind: KindStage, Name: "reduce", DurN: ms(20)},
		{ID: 5, Parent: 1, Kind: KindPTP, Name: "ptp_b", DurN: ms(30)},
		{ID: 6, Parent: 5, Kind: KindStage, Name: "faultsim", DurN: ms(30)},
	}
	sum := Summarize(events)
	if sum.Wall != 100*time.Millisecond {
		t.Errorf("wall = %v, want 100ms", sum.Wall)
	}
	if sum.StageTotal != 90*time.Millisecond {
		t.Errorf("stage total = %v, want 90ms", sum.StageTotal)
	}
	if sum.CriticalPTP != "ptp_a" {
		t.Errorf("critical ptp = %q, want ptp_a", sum.CriticalPTP)
	}
	if len(sum.Stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(sum.Stages))
	}
	fs := sum.Stages[0]
	if fs.Name != "faultsim" || fs.Count != 2 || fs.Total != 70*time.Millisecond ||
		fs.Min != 30*time.Millisecond || fs.Max != 40*time.Millisecond || fs.Mean() != 35*time.Millisecond {
		t.Errorf("faultsim stat wrong: %+v", fs)
	}

	var b strings.Builder
	sum.Render(&b)
	out := b.String()
	for _, want := range []string{"wall 100ms", "stage-total 90ms", "(90.0% of wall)", "critical path: PTP ptp_a", "faultsim", "reduce"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
