package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	randv2 "math/rand/v2"
	"strings"
	"time"
)

// TraceID is the 128-bit campaign trace identifier. Every span in one
// campaign — across stlserver, the coordinator and every stlworker that
// simulated a shard for it — carries the same TraceID, which is what
// lets stltrace reassemble the per-process JSONL files into one
// waterfall. The zero value means "no trace".
type TraceID [16]byte

// IsZero reports whether the trace ID is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the trace ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// TraceHeader is the HTTP header that carries trace context between
// processes (traceparent-style: `traceid-spanid-flags`).
const TraceHeader = "X-Gpustl-Trace"

// SpanContext is the propagated identity of one span: enough for a
// remote process to open child spans that land in the same trace.
type SpanContext struct {
	Trace TraceID
	Span  uint64
	Flags byte // bit 0: sampled
}

// Valid reports whether the context names a real span in a real trace.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && sc.Span != 0 }

// Header renders the context in the X-Gpustl-Trace wire format:
// 32 hex trace digits, 16 hex span digits, 2 hex flag digits,
// dash-separated (e.g. "4bf9…2c01-00f067aa0ba902b7-01").
func (sc SpanContext) Header() string {
	var sp [8]byte
	binary.BigEndian.PutUint64(sp[:], sc.Span)
	return fmt.Sprintf("%s-%s-%02x", sc.Trace.String(), hex.EncodeToString(sp[:]), sc.Flags)
}

// ParseTraceHeader parses the X-Gpustl-Trace wire format back into a
// SpanContext. It rejects malformed input rather than guessing: a
// process that cannot parse the header proceeds untraced, it does not
// fabricate a trace.
func ParseTraceHeader(s string) (SpanContext, error) {
	var sc SpanContext
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) != 3 || len(parts[0]) != 32 || len(parts[1]) != 16 || len(parts[2]) != 2 {
		return sc, fmt.Errorf("obs: malformed trace header %q", s)
	}
	if _, err := hex.Decode(sc.Trace[:], []byte(parts[0])); err != nil {
		return sc, fmt.Errorf("obs: trace header trace id: %w", err)
	}
	var sp [8]byte
	if _, err := hex.Decode(sp[:], []byte(parts[1])); err != nil {
		return sc, fmt.Errorf("obs: trace header span id: %w", err)
	}
	sc.Span = binary.BigEndian.Uint64(sp[:])
	var fl [1]byte
	if _, err := hex.Decode(fl[:], []byte(parts[2])); err != nil {
		return sc, fmt.Errorf("obs: trace header flags: %w", err)
	}
	sc.Flags = fl[0]
	if !sc.Valid() {
		return sc, fmt.Errorf("obs: trace header %q names the zero trace or span", s)
	}
	return sc, nil
}

// idRand is the span/trace ID source: the process-seeded ChaCha8
// generator from math/rand/v2. IDs must be unpredictable enough to be
// globally unique across a fleet merge (crypto-strength is not needed,
// speed on the span hot path is), and must never be zero — zero is the
// "no parent / no trace" sentinel in the Event schema.
func newSpanID() uint64 {
	for {
		if id := randv2.Uint64(); id != 0 {
			return id
		}
	}
}

// NewTraceID mints a fresh random 128-bit trace ID. It prefers
// crypto/rand (trace IDs are minted once per campaign, off the hot
// path) and falls back to the seeded PRNG if the kernel source fails.
func NewTraceID() TraceID {
	var t TraceID
	if _, err := rand.Read(t[:]); err != nil {
		binary.BigEndian.PutUint64(t[0:8], newSpanID())
		binary.BigEndian.PutUint64(t[8:16], newSpanID())
	}
	if t.IsZero() {
		t[15] = 1
	}
	return t
}

// Context returns the span's propagable identity. On a nil or untraced
// span it returns the zero SpanContext (Valid() == false).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.trace, Span: s.id, Flags: 1}
}

// TraceID returns the trace the span belongs to (zero on nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace
}

// StartRemote opens a span whose parent lives in another process,
// identified by a SpanContext parsed off the wire. The child joins the
// remote trace; its event records remote="true" so the merge tool can
// treat the parent/child pair as an RPC send/recv edge when estimating
// clock skew. An invalid context starts a fresh root instead — a
// garbled header must not corrupt the trace graph.
func (t *Tracer) StartRemote(sc SpanContext, kind, name string) *Span {
	if t == nil {
		return nil
	}
	if !sc.Valid() {
		return t.Start(nil, kind, name)
	}
	s := &Span{
		tr: t, id: newSpanID(), parent: sc.Span, trace: sc.Trace,
		remote: true, kind: kind, name: name, start: time.Now(),
	}
	t.mu.Lock()
	t.open[s.id] = s
	t.mu.Unlock()
	return s
}

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying the span, so layers that only
// see a context (the dist coordinator under core, the HTTP transport)
// can parent their spans correctly. A nil span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
