package obs

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestTraceHeaderRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: NewTraceID(), Span: 0x00f067aa0ba902b7, Flags: 1}
	h := sc.Header()
	got, err := ParseTraceHeader(h)
	if err != nil {
		t.Fatalf("parsing own header %q: %v", h, err)
	}
	if got != sc {
		t.Fatalf("round trip: got %+v, want %+v", got, sc)
	}
}

func TestParseTraceHeaderRejectsMalformed(t *testing.T) {
	zero := SpanContext{}.Header() // well-formed hex, but names the zero trace
	for _, bad := range []string{
		"",
		"not-a-trace",
		"abcd-1234-01",
		"4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // missing flags
		"4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-1",    // short flags
		"4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902bz-01",   // bad hex
		"4bf92f3577b34da6a3ce929d0e0e473-00f067aa0ba902b7-01",    // short trace
		"4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // extra part
		zero,
	} {
		if _, err := ParseTraceHeader(bad); err == nil {
			t.Errorf("ParseTraceHeader(%q) accepted malformed input", bad)
		}
	}
}

func TestSpanTraceInheritance(t *testing.T) {
	tr := NewTracer(filepath.Join(t.TempDir(), "t.jsonl"))
	root := tr.Start(nil, KindCampaign, "c")
	child := tr.Start(root, KindPTP, "p")
	if root.TraceID().IsZero() {
		t.Fatal("root span did not mint a trace ID")
	}
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace %s != root trace %s", child.TraceID(), root.TraceID())
	}
	other := tr.Start(nil, KindCampaign, "c2")
	if other.TraceID() == root.TraceID() {
		t.Fatal("two root spans share a trace ID")
	}
}

func TestStartRemoteJoinsTrace(t *testing.T) {
	dir := t.TempDir()
	server := NewTracer(filepath.Join(dir, "server.jsonl"))
	worker := NewTracer(filepath.Join(dir, "worker.jsonl"))

	parent := server.Start(nil, KindCampaign, "execute:c1")
	// Simulate the wire: context → header → parse → remote child.
	sc, err := ParseTraceHeader(parent.Context().Header())
	if err != nil {
		t.Fatal(err)
	}
	child := worker.StartRemote(sc, KindShard, "shard-exec:0")
	child.End()
	parent.End()

	if child.TraceID() != parent.TraceID() {
		t.Fatalf("remote child trace %s != parent trace %s", child.TraceID(), parent.TraceID())
	}
	if err := worker.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadTraceFile(filepath.Join(dir, "worker.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("got %d worker events, want 1", len(events))
	}
	ev := events[0]
	if !ev.Remote {
		t.Error("remote child event not marked remote")
	}
	if ev.Parent != parent.ID() {
		t.Errorf("remote child parent = %#x, want %#x", ev.Parent, parent.ID())
	}
	if ev.Trace != parent.TraceID().String() {
		t.Errorf("remote child trace = %s, want %s", ev.Trace, parent.TraceID())
	}

	// An invalid context must not fabricate a trace link: the span
	// becomes a fresh root instead.
	orphan := worker.StartRemote(SpanContext{}, KindShard, "shard-exec:1")
	if orphan.Context().Span == 0 {
		t.Fatal("StartRemote with invalid context returned no span")
	}
	if orphan.TraceID() == parent.TraceID() {
		t.Error("invalid context joined the parent trace")
	}
}

func TestContextSpanAndUsagePropagation(t *testing.T) {
	tr := NewTracer(filepath.Join(t.TempDir(), "t.jsonl"))
	s := tr.Start(nil, KindCampaign, "c")
	ctx := ContextWithSpan(context.Background(), s)
	if got := SpanFromContext(ctx); got != s {
		t.Fatalf("SpanFromContext = %p, want %p", got, s)
	}
	if got := SpanFromContext(context.Background()); got != nil {
		t.Fatalf("SpanFromContext on empty ctx = %p, want nil", got)
	}
	// Nil span leaves ctx unchanged.
	if ctx2 := ContextWithSpan(ctx, nil); SpanFromContext(ctx2) != s {
		t.Fatal("ContextWithSpan(nil) dropped the existing span")
	}
}

func TestTracerRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	// Tiny cap so every flush past the first few spans rotates.
	tr := NewTracerOptions(path, TracerOptions{MaxBytes: 2048, KeepFiles: 3})

	var recent []uint64 // the last flush batch: must survive rotation
	live := tr.Start(nil, KindCampaign, "long-running")
	for i := 0; i < 200; i++ {
		s := tr.Start(live, KindShard, fmt.Sprintf("shard:%d", i))
		s.End()
		if i >= 180 {
			recent = append(recent, s.ID())
		}
		if i%20 == 19 {
			if err := tr.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	// The live file must be under control (open-span snapshot plus the
	// most recent unrotated events), and rotations must exist.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 4096 {
		t.Errorf("live trace file is %d bytes; rotation did not bound it", st.Size())
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("no rotated file after overflow: %v", err)
	}
	if _, err := os.Stat(path + ".4"); err == nil {
		t.Error("rotation kept more than KeepFiles files")
	}

	// Rotation keeps the newest data and discards the oldest (bounded
	// disk is the point). Across the retained set: no ended span is
	// duplicated, the most recent batch survives, and the open span's
	// snapshot is in the live file.
	found := map[uint64]int{}
	liveHasOpen := false
	for i, p := range []string{path, path + ".1", path + ".2", path + ".3"} {
		events, err := ReadTraceFile(p)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatalf("reading %s: %v", p, err)
		}
		for _, ev := range events {
			if ev.ID == live.ID() {
				if i == 0 {
					liveHasOpen = true
				}
				continue // open-span snapshot may appear in several files
			}
			found[ev.ID]++
		}
	}
	if !liveHasOpen {
		t.Error("open span missing from the live file after rotation")
	}
	for id, n := range found {
		if n > 1 {
			t.Errorf("ended span %#x appears %d times across rotation set, want at most 1", id, n)
		}
	}
	for _, id := range recent {
		if found[id] != 1 {
			t.Errorf("recently ended span %#x lost by rotation", id)
		}
	}

	live.End()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestTracerRotationDisabledByDefault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr := NewTracer(path)
	for i := 0; i < 500; i++ {
		tr.Start(nil, KindStage, fmt.Sprintf("s%d", i)).End()
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".1"); err == nil {
		t.Fatal("unbounded tracer rotated")
	}
	events, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 500 {
		t.Fatalf("got %d events, want 500", len(events))
	}
}

func TestStartAtRecordsRetroactiveStart(t *testing.T) {
	tr := NewTracer(filepath.Join(t.TempDir(), "t.jsonl"))
	root := tr.Start(nil, KindCampaign, "c")
	past := time.Now().Add(-3 * time.Second)
	qw := tr.StartAt(root, KindStage, "queue-wait", past)
	qw.End()
	root.End()
	events := tr.Events()
	for _, ev := range events {
		if ev.Name != "queue-wait" {
			continue
		}
		if got := ev.Start(); got.After(past.Add(100 * time.Millisecond)) {
			t.Fatalf("queue-wait start %v, want ~%v", got, past)
		}
		if ev.Duration() < 2*time.Second {
			t.Fatalf("queue-wait duration %v, want >= ~3s", ev.Duration())
		}
		return
	}
	t.Fatal("queue-wait event not recorded")
}
