package obs

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// UsageMeter is the per-tenant accounting substrate: every billable
// quantity the control plane produces — fault-blocks simulated,
// worker-seconds consumed, result-cache hits and misses, bytes
// journaled — accumulates in tenant-labeled counters on the shared
// Registry (so /metrics exposes them for free) and in a tenant index
// the GET /v1/usage endpoint snapshots. A nil *UsageMeter is a no-op,
// like everything else in this package.
type UsageMeter struct {
	reg *Registry

	mu      sync.Mutex
	tenants map[string]bool
}

// NewUsageMeter creates a usage meter recording into reg.
func NewUsageMeter(reg *Registry) *UsageMeter {
	return &UsageMeter{reg: reg, tenants: map[string]bool{}}
}

// The usage series, all counters labeled by tenant. Worker time is
// metered in integer milliseconds (the Counter type is integral);
// the /v1/usage snapshot converts to float seconds.
const (
	usageBlocks    = "gpustl_usage_fault_blocks_total"
	usageWorkerMS  = "gpustl_usage_worker_milliseconds_total"
	usageCacheHit  = "gpustl_usage_cache_hits_total"
	usageCacheMiss = "gpustl_usage_cache_misses_total"
	usageJournal   = "gpustl_usage_journal_bytes_total"
	usageCampaigns = "gpustl_usage_campaigns_total"
)

func (u *UsageMeter) counter(base, tenant string) *Counter {
	if u == nil {
		return nil
	}
	u.mu.Lock()
	u.tenants[tenant] = true
	u.mu.Unlock()
	return u.reg.Counter(base + `{tenant="` + tenant + `"}`)
}

// AddFaultBlocks meters fault-blocks simulated on the tenant's behalf.
func (u *UsageMeter) AddFaultBlocks(tenant string, n uint64) {
	u.counter(usageBlocks, tenant).Add(n)
}

// AddWorkerTime meters simulation capacity consumed: wall-clock of the
// campaign times the worker parallelism that was reserved for it.
func (u *UsageMeter) AddWorkerTime(tenant string, d time.Duration) {
	if d < 0 {
		return
	}
	u.counter(usageWorkerMS, tenant).Add(uint64(d.Milliseconds()))
}

// AddCacheHit meters a campaign served from the verified result cache.
func (u *UsageMeter) AddCacheHit(tenant string) { u.counter(usageCacheHit, tenant).Inc() }

// AddCacheMiss meters a campaign that had to simulate.
func (u *UsageMeter) AddCacheMiss(tenant string) { u.counter(usageCacheMiss, tenant).Inc() }

// AddJournalBytes meters checkpoint/journal bytes written for the
// tenant's campaigns.
func (u *UsageMeter) AddJournalBytes(tenant string, n uint64) {
	u.counter(usageJournal, tenant).Add(n)
}

// AddCampaign meters one campaign execution (cache hits included).
func (u *UsageMeter) AddCampaign(tenant string) { u.counter(usageCampaigns, tenant).Inc() }

// TenantUsage is one tenant's accumulated consumption, the unit of the
// /v1/usage response.
type TenantUsage struct {
	Tenant        string  `json:"tenant"`
	Campaigns     uint64  `json:"campaigns"`
	FaultBlocks   uint64  `json:"fault_blocks"`
	WorkerSeconds float64 `json:"worker_seconds"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	JournalBytes  uint64  `json:"journal_bytes"`
}

// Snapshot returns every tenant's usage, sorted by tenant name.
func (u *UsageMeter) Snapshot() []TenantUsage {
	if u == nil {
		return nil
	}
	u.mu.Lock()
	tenants := make([]string, 0, len(u.tenants))
	for t := range u.tenants {
		tenants = append(tenants, t)
	}
	u.mu.Unlock()
	sort.Strings(tenants)

	out := make([]TenantUsage, 0, len(tenants))
	for _, t := range tenants {
		label := `{tenant="` + t + `"}`
		out = append(out, TenantUsage{
			Tenant:        t,
			Campaigns:     u.reg.Counter(usageCampaigns + label).Value(),
			FaultBlocks:   u.reg.Counter(usageBlocks + label).Value(),
			WorkerSeconds: float64(u.reg.Counter(usageWorkerMS+label).Value()) / 1e3,
			CacheHits:     u.reg.Counter(usageCacheHit + label).Value(),
			CacheMisses:   u.reg.Counter(usageCacheMiss + label).Value(),
			JournalBytes:  u.reg.Counter(usageJournal + label).Value(),
		})
	}
	return out
}

type usageCtxKey struct{}

type usageRef struct {
	u      *UsageMeter
	tenant string
}

// ContextWithUsage attributes everything below this context to the
// tenant: layers that see only a context (the dist coordinator under
// core, the fault simulator) meter consumption against it. The server
// injects it once per campaign execution.
func ContextWithUsage(ctx context.Context, u *UsageMeter, tenant string) context.Context {
	if u == nil || tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, usageCtxKey{}, usageRef{u, tenant})
}

// UsageFromContext returns the attributed meter and tenant, or (nil,"").
func UsageFromContext(ctx context.Context) (*UsageMeter, string) {
	if ctx == nil {
		return nil, ""
	}
	ref, _ := ctx.Value(usageCtxKey{}).(usageRef)
	return ref.u, ref.tenant
}

// WriteJSON renders the snapshot as the /v1/usage response body.
func (u *UsageMeter) WriteJSON(w io.Writer) error {
	snap := u.Snapshot()
	if snap == nil {
		snap = []TenantUsage{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Tenants []TenantUsage `json:"tenants"`
	}{snap})
}
