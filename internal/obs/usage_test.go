package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestUsageMeterSnapshot(t *testing.T) {
	reg := NewRegistry()
	u := NewUsageMeter(reg)

	u.AddCampaign("beta")
	u.AddFaultBlocks("beta", 1000)
	u.AddWorkerTime("beta", 2500*time.Millisecond)
	u.AddCacheMiss("beta")
	u.AddJournalBytes("beta", 4096)

	u.AddCampaign("alpha")
	u.AddCampaign("alpha")
	u.AddCacheHit("alpha")
	u.AddCacheMiss("alpha")
	u.AddFaultBlocks("alpha", 7)

	snap := u.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("got %d tenants, want 2", len(snap))
	}
	if snap[0].Tenant != "alpha" || snap[1].Tenant != "beta" {
		t.Fatalf("snapshot not sorted by tenant: %q, %q", snap[0].Tenant, snap[1].Tenant)
	}
	a, b := snap[0], snap[1]
	if a.Campaigns != 2 || a.CacheHits != 1 || a.CacheMisses != 1 || a.FaultBlocks != 7 {
		t.Errorf("alpha usage wrong: %+v", a)
	}
	if b.Campaigns != 1 || b.FaultBlocks != 1000 || b.JournalBytes != 4096 {
		t.Errorf("beta usage wrong: %+v", b)
	}
	if b.WorkerSeconds != 2.5 {
		t.Errorf("beta worker seconds = %g, want 2.5", b.WorkerSeconds)
	}

	// The same numbers are visible as tenant-labeled /metrics counters.
	if got := reg.Counter(`gpustl_usage_fault_blocks_total{tenant="beta"}`).Value(); got != 1000 {
		t.Errorf("registry fault-block counter = %d, want 1000", got)
	}
}

func TestUsageMeterWriteJSON(t *testing.T) {
	reg := NewRegistry()
	u := NewUsageMeter(reg)
	u.AddCampaign("t1")

	var sb strings.Builder
	if err := u.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var resp struct {
		Tenants []TenantUsage `json:"tenants"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &resp); err != nil {
		t.Fatalf("response not valid JSON: %v\n%s", err, sb.String())
	}
	if len(resp.Tenants) != 1 || resp.Tenants[0].Tenant != "t1" || resp.Tenants[0].Campaigns != 1 {
		t.Errorf("response = %+v", resp)
	}

	// A nil meter still writes a well-formed empty response (the HTTP
	// handler calls it unconditionally).
	sb.Reset()
	var nilU *UsageMeter
	if err := nilU.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(sb.String()), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Tenants == nil || len(resp.Tenants) != 0 {
		t.Errorf("nil meter response tenants = %v, want []", resp.Tenants)
	}
}

func TestUsageMeterNilSafe(t *testing.T) {
	var u *UsageMeter
	u.AddCampaign("t")
	u.AddFaultBlocks("t", 1)
	u.AddWorkerTime("t", time.Second)
	u.AddCacheHit("t")
	u.AddCacheMiss("t")
	u.AddJournalBytes("t", 1)
	if snap := u.Snapshot(); snap != nil {
		t.Errorf("nil meter snapshot = %v, want nil", snap)
	}
}

func TestUsageContextAttribution(t *testing.T) {
	reg := NewRegistry()
	u := NewUsageMeter(reg)

	ctx := ContextWithUsage(context.Background(), u, "acme")
	gotU, gotT := UsageFromContext(ctx)
	if gotU != u || gotT != "acme" {
		t.Fatalf("UsageFromContext = (%p, %q), want (%p, %q)", gotU, gotT, u, "acme")
	}

	// Meter through the context, exactly as fault.SimulateCtx does.
	gotU.AddFaultBlocks(gotT, 42)
	if got := u.Snapshot()[0].FaultBlocks; got != 42 {
		t.Errorf("context-attributed fault blocks = %d, want 42", got)
	}

	// Nil meter or empty tenant must not pollute the context.
	if mu, mt := UsageFromContext(ContextWithUsage(context.Background(), nil, "acme")); mu != nil || mt != "" {
		t.Errorf("nil-meter context carried (%p, %q)", mu, mt)
	}
	if mu, mt := UsageFromContext(ContextWithUsage(context.Background(), u, "")); mu != nil || mt != "" {
		t.Errorf("empty-tenant context carried (%p, %q)", mu, mt)
	}
	if mu, mt := UsageFromContext(context.Background()); mu != nil || mt != "" {
		t.Errorf("bare context carried (%p, %q)", mu, mt)
	}

	// Negative worker time is dropped, not wrapped around.
	u.AddWorkerTime("acme", -time.Second)
	if got := u.Snapshot()[0].WorkerSeconds; got != 0 {
		t.Errorf("negative worker time metered: %g", got)
	}
}
