package overload

import (
	"context"
	"sync"
	"time"

	"gpustl/internal/failpoint"
	"gpustl/internal/obs"
)

// Failpoints. overload.admit.shed forces Acquire to shed as if the
// pool were saturated (the chaos harness uses it to prove callers
// survive ErrOverloaded on any campaign); overload.admit.delay injects
// latency into the admission decision itself (a slow admission path
// must still be correct, and with a deadline it degenerates into a
// shed).
var (
	fpAdmitShed  = failpoint.New("overload.admit.shed")
	fpAdmitDelay = failpoint.New("overload.admit.delay")
)

// Shed reasons, used as the reason label on gpustl_overload_shed_total.
const (
	ShedQueueFull = "queue_full" // wait queue at MaxQueue
	ShedDeadline  = "deadline"   // caller's deadline expired before a slot freed
	ShedInjected  = "injected"   // overload.admit.shed fired
)

// AdmissionOptions configures an Admission pool.
type AdmissionOptions struct {
	// Capacity bounds the summed cost of admitted-but-unreleased work.
	// A request costing more than Capacity is clamped to it (it can
	// still run — alone). Must be > 0.
	Capacity int64
	// MaxQueue bounds how many callers may wait for a slot; a caller
	// arriving with the queue full is shed immediately. 0 means no
	// queueing at all: saturated ⇒ shed.
	MaxQueue int
	// Clock defaults to SystemClock. Tests inject a FakeClock.
	Clock Clock
	// Metrics receives gpustl_overload_* series; nil disables.
	Metrics *obs.Registry
	// Name labels this pool's metric series (pool="<name>").
	Name string
}

// Admission is a weighted semaphore with a bounded FIFO wait queue and
// deadline-aware shedding. Acquire admits work whose summed cost fits
// under Capacity; otherwise the caller queues (up to MaxQueue deep)
// until a release frees enough capacity or its context dies — whichever
// comes first. Every refusal is the explicit, fast ErrOverloaded.
//
// A nil *Admission admits everything instantly: callers wire admission
// unconditionally and "no limits configured" costs one branch.
type Admission struct {
	capacity int64
	maxQueue int
	clock    Clock

	mu       sync.Mutex
	inflight int64
	waiters  []*waiter

	admittedN uint64
	shedN     uint64

	// metric handles (nil-safe when Metrics was nil)
	mAdmitted   *obs.Counter
	mQueued     *obs.Counter
	mShed       map[string]*obs.Counter
	mInflight   *obs.Gauge
	mQueueDepth *obs.Gauge
	mWait       *obs.Histogram
}

type waiter struct {
	cost    int64
	grant   chan struct{}
	enq     time.Time
	granted bool
}

// NewAdmission creates an admission pool. Panics if Capacity <= 0 — an
// unlimited pool is spelled as a nil *Admission, not a zero capacity.
func NewAdmission(o AdmissionOptions) *Admission {
	if o.Capacity <= 0 {
		panic("overload: NewAdmission with Capacity <= 0 (use a nil *Admission for no limit)")
	}
	if o.Clock == nil {
		o.Clock = SystemClock()
	}
	a := &Admission{capacity: o.Capacity, maxQueue: o.MaxQueue, clock: o.Clock}
	if m := o.Metrics; m != nil {
		lab := `{pool="` + o.Name + `"}`
		a.mAdmitted = m.Counter("gpustl_overload_admitted_total" + lab)
		a.mQueued = m.Counter("gpustl_overload_queued_total" + lab)
		a.mShed = map[string]*obs.Counter{}
		for _, reason := range []string{ShedQueueFull, ShedDeadline, ShedInjected} {
			a.mShed[reason] = m.Counter(`gpustl_overload_shed_total{pool="` + o.Name + `",reason="` + reason + `"}`)
		}
		a.mInflight = m.Gauge("gpustl_overload_inflight_cost" + lab)
		a.mQueueDepth = m.Gauge("gpustl_overload_queue_depth" + lab)
		a.mWait = m.Histogram("gpustl_overload_queue_wait_seconds"+lab, obs.DefQueueBuckets())
	}
	return a
}

// Acquire admits cost units of work, blocking in FIFO order while the
// pool is saturated, and returns a release function that must be called
// exactly once when the work completes. It returns ErrOverloaded — and
// a nil release — when the wait queue is full, when ctx dies before a
// slot frees, or when the caller's deadline has already expired on
// arrival. On a nil *Admission it admits immediately.
func (a *Admission) Acquire(ctx context.Context, cost int64) (release func(), err error) {
	if a == nil {
		return func() {}, nil
	}
	if _, fired := fpAdmitShed.Eval(); fired {
		a.shed(ShedInjected)
		return nil, ErrOverloaded
	}
	if fpAdmitDelay.Enabled() {
		// A delay-armed site sleeps here; any error kind is treated as a
		// shed so chaos can also arm it as a hard failure.
		if ierr := fpAdmitDelay.Inject(); ierr != nil {
			a.shed(ShedInjected)
			return nil, ErrOverloaded
		}
	}
	if cost < 1 {
		cost = 1
	}
	if cost > a.capacity {
		cost = a.capacity
	}
	// Dead on arrival: never queue work that cannot possibly finish.
	if err := ctx.Err(); err != nil {
		a.shed(ShedDeadline)
		return nil, ErrOverloaded
	}
	if dl, ok := ctx.Deadline(); ok && !a.clock.Now().Before(dl) {
		a.shed(ShedDeadline)
		return nil, ErrOverloaded
	}

	a.mu.Lock()
	if len(a.waiters) == 0 && a.inflight+cost <= a.capacity {
		a.inflight += cost
		a.admittedN++
		a.mInflight.Set(float64(a.inflight))
		a.mu.Unlock()
		a.mAdmitted.Inc()
		a.mWait.Observe(0)
		return a.releaser(cost), nil
	}
	if len(a.waiters) >= a.maxQueue {
		a.mu.Unlock()
		a.shed(ShedQueueFull)
		return nil, ErrOverloaded
	}
	w := &waiter{cost: cost, grant: make(chan struct{}, 1), enq: a.clock.Now()}
	a.waiters = append(a.waiters, w)
	a.mQueueDepth.Set(float64(len(a.waiters)))
	a.mu.Unlock()
	a.mQueued.Inc()

	select {
	case <-w.grant:
		a.mAdmitted.Inc()
		a.mWait.Observe(a.clock.Now().Sub(w.enq).Seconds())
		a.mu.Lock()
		a.admittedN++
		a.mu.Unlock()
		return a.releaser(cost), nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// The grant raced the deadline: the slot is ours, but the
			// caller is out of time. Refund it so the next waiter runs.
			a.inflight -= w.cost
			a.grantLocked()
			a.mInflight.Set(float64(a.inflight))
		} else {
			a.removeLocked(w)
		}
		a.mQueueDepth.Set(float64(len(a.waiters)))
		a.mu.Unlock()
		a.shed(ShedDeadline)
		return nil, ErrOverloaded
	}
}

// TryAcquire admits cost units only if capacity is free right now —
// never queueing, never blocking. The worker accept path uses it: a
// saturated worker must answer 429 immediately, not sit on the request.
func (a *Admission) TryAcquire(cost int64) (release func(), ok bool) {
	if a == nil {
		return func() {}, true
	}
	if _, fired := fpAdmitShed.Eval(); fired {
		a.shed(ShedInjected)
		return nil, false
	}
	if cost < 1 {
		cost = 1
	}
	if cost > a.capacity {
		cost = a.capacity
	}
	a.mu.Lock()
	if len(a.waiters) > 0 || a.inflight+cost > a.capacity {
		a.mu.Unlock()
		a.shed(ShedQueueFull)
		return nil, false
	}
	a.inflight += cost
	a.admittedN++
	a.mInflight.Set(float64(a.inflight))
	a.mu.Unlock()
	a.mAdmitted.Inc()
	return a.releaser(cost), true
}

// releaser returns the once-only release closure for an admitted cost.
func (a *Admission) releaser(cost int64) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.inflight -= cost
			a.grantLocked()
			a.mInflight.Set(float64(a.inflight))
			a.mQueueDepth.Set(float64(len(a.waiters)))
			a.mu.Unlock()
		})
	}
}

// grantLocked hands freed capacity to queued waiters in FIFO order.
// Strict FIFO is deliberate: a large head-of-line waiter blocks smaller
// ones behind it, trading some utilization for starvation-freedom.
func (a *Admission) grantLocked() {
	for len(a.waiters) > 0 {
		w := a.waiters[0]
		if a.inflight+w.cost > a.capacity {
			return
		}
		a.inflight += w.cost
		w.granted = true
		a.waiters = a.waiters[1:]
		w.grant <- struct{}{}
	}
}

func (a *Admission) removeLocked(w *waiter) {
	for i, q := range a.waiters {
		if q == w {
			a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
			return
		}
	}
}

func (a *Admission) shed(reason string) {
	a.mu.Lock()
	a.shedN++
	a.mu.Unlock()
	if a.mShed != nil {
		a.mShed[reason].Inc()
	}
}

// Inflight returns the summed cost currently admitted (0 on nil).
func (a *Admission) Inflight() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}

// QueueLen returns the number of waiting callers (0 on nil).
func (a *Admission) QueueLen() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.waiters)
}

// Admitted returns how many acquisitions succeeded (0 on nil).
func (a *Admission) Admitted() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.admittedN
}

// Shed returns how many acquisitions were refused (0 on nil).
func (a *Admission) Shed() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.shedN
}
