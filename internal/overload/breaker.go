package overload

import (
	"math/rand"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: healthy, all traffic flows.
	BreakerClosed BreakerState = iota
	// BreakerOpen: tripped, all traffic routes around the backend until
	// the cool-down elapses.
	BreakerOpen
	// BreakerHalfOpen: cool-down elapsed, exactly one probe may test the
	// backend; its fate decides closed vs open again.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerOptions configures a Breaker.
type BreakerOptions struct {
	// FailureThreshold is the consecutive-failure count that trips the
	// breaker open. Default 5.
	FailureThreshold int
	// OpenFor is the base cool-down after tripping. Default 5s.
	OpenFor time.Duration
	// JitterFrac spreads each cool-down uniformly over
	// [OpenFor, OpenFor*(1+JitterFrac)] so a fleet of breakers tripped by
	// one incident doesn't probe the recovering backend in lockstep.
	// Default 0.5; negative disables jitter.
	JitterFrac float64
	// Seed drives the jitter RNG — same seed, same probe schedule.
	Seed int64
	// Clock defaults to SystemClock.
	Clock Clock
}

// Breaker is a per-backend circuit breaker. The coordinator consults
// Ready while *scanning* candidate workers — non-consuming, so looking
// at ten breakers doesn't burn ten probes — and calls Acquire only on
// the worker it actually dispatches to, which in half-open claims the
// single probe slot. OnSuccess/OnFailure feed results back.
//
// A nil *Breaker is permanently closed: always ready, never trips.
type Breaker struct {
	threshold int
	openFor   time.Duration
	jitter    float64
	clock     Clock

	mu      sync.Mutex
	rng     *rand.Rand
	state   BreakerState
	fails   int       // consecutive failures while closed
	until   time.Time // open cool-down expiry
	probing bool      // half-open probe slot claimed
	opens   uint64
}

// NewBreaker creates a closed breaker.
func NewBreaker(o BreakerOptions) *Breaker {
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 5
	}
	if o.OpenFor <= 0 {
		o.OpenFor = 5 * time.Second
	}
	if o.JitterFrac == 0 {
		o.JitterFrac = 0.5
	}
	if o.JitterFrac < 0 {
		o.JitterFrac = 0
	}
	if o.Clock == nil {
		o.Clock = SystemClock()
	}
	return &Breaker{
		threshold: o.FailureThreshold,
		openFor:   o.OpenFor,
		jitter:    o.JitterFrac,
		clock:     o.Clock,
		rng:       rand.New(rand.NewSource(o.Seed)),
	}
}

// Ready reports whether the backend may receive work right now, without
// claiming anything: closed ⇒ true; open ⇒ true only once the cool-down
// has elapsed (the breaker moves to half-open); half-open ⇒ true only
// while the probe slot is unclaimed.
func (b *Breaker) Ready() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tickLocked()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		return !b.probing
	}
	return false
}

// Acquire claims the right to dispatch: identical to Ready except that
// in half-open it also takes the single probe slot, so concurrent
// dispatchers can't flood a barely recovered backend.
func (b *Breaker) Acquire() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tickLocked()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// tickLocked advances open → half-open when the cool-down has elapsed.
func (b *Breaker) tickLocked() {
	if b.state == BreakerOpen && !b.clock.Now().Before(b.until) {
		b.state = BreakerHalfOpen
		b.probing = false
	}
}

// OnSuccess records a successful call: it resets the consecutive
// failure count, and a successful half-open probe closes the breaker.
func (b *Breaker) OnSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tickLocked()
	b.fails = 0
	if b.state == BreakerHalfOpen {
		b.state = BreakerClosed
		b.probing = false
	}
}

// OnCancel returns a claimed half-open probe slot without a verdict:
// the dispatch was preempted (hedge lost, worker declared dead, a
// backpressure bounce) before the backend could prove anything, so the
// next dispatcher may probe instead. No state change in any other
// state. A dispatch admitted while still closed may race a later
// half-open probe here and free its slot early — a brief second probe,
// never a flood.
func (b *Breaker) OnCancel() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tickLocked()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
}

// OnFailure records a failed call. While closed, the threshold'th
// consecutive failure trips the breaker; a failed half-open probe
// reopens it for a fresh (re-jittered) cool-down.
func (b *Breaker) OnFailure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tickLocked()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.openLocked()
		}
	case BreakerHalfOpen:
		b.openLocked()
	}
}

func (b *Breaker) openLocked() {
	b.state = BreakerOpen
	b.fails = 0
	b.probing = false
	b.opens++
	d := b.openFor
	if b.jitter > 0 {
		d += time.Duration(b.rng.Float64() * b.jitter * float64(b.openFor))
	}
	b.until = b.clock.Now().Add(d)
}

// State returns the breaker's current position (BreakerClosed on nil),
// advancing open → half-open if the cool-down has elapsed.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tickLocked()
	return b.state
}

// Opens returns how many times the breaker has tripped (0 on nil).
func (b *Breaker) Opens() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
