package overload

import (
	"sort"
	"sync"
	"time"
)

// FakeClock is a manually advanced Clock for deterministic tests.
// After-channels fire when Advance moves the clock past their due
// time, in due-time order.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []fakeTimer
}

type fakeTimer struct {
	due time.Time
	ch  chan time.Time
}

// NewFakeClock creates a FakeClock starting at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the fake current time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After returns a channel that fires once the clock has been Advanced
// to or past d from now.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	due := c.now.Add(d)
	if d <= 0 {
		ch <- due
		return ch
	}
	c.timers = append(c.timers, fakeTimer{due: due, ch: ch})
	return ch
}

// Advance moves the clock forward by d, firing every timer whose due
// time is reached, earliest first.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	sort.SliceStable(c.timers, func(i, j int) bool { return c.timers[i].due.Before(c.timers[j].due) })
	kept := c.timers[:0]
	for _, t := range c.timers {
		if !t.due.After(c.now) {
			t.ch <- t.due
		} else {
			kept = append(kept, t)
		}
	}
	c.timers = kept
}
