// Package overload is the load-resilience layer of the campaign
// pipeline: the machinery that keeps the system answering *something*
// when offered more work than it can carry, instead of queueing
// unboundedly, retry-storming a sick fleet, or falling over mid-burst.
//
// It provides four primitives, each independently wired into the tiers
// above it (internal/run, internal/dist, the stlworker daemon):
//
//   - Admission: a weighted semaphore over estimated in-flight
//     simulation bytes with a bounded FIFO wait queue. Work that cannot
//     be admitted before its deadline — or that arrives with the queue
//     already full — is shed explicitly with ErrOverloaded, fast,
//     before any artifact is written. Shedding early and loudly is the
//     load-shedding contract: a client that gets ErrOverloaded in
//     milliseconds can retry elsewhere or later; one that queues for
//     minutes and then times out has burned its deadline for nothing.
//   - RetryBudget: a token-bucket bound on retries as a fraction of
//     requests (the classic ~10% budget). Individual request retries
//     are fine; a fleet-wide retry storm against an already-sick
//     backend is how overload turns into outage. When the budget is
//     spent, retries are denied and the caller degrades instead.
//   - Breaker: a per-backend closed/open/half-open circuit breaker.
//     Consecutive failures open it; while open, callers route around
//     the backend without burning attempts on it; after a (seeded,
//     jittered) cool-down a single half-open probe decides whether to
//     close it again.
//   - Clock: the injected time source that makes all of the above
//     deterministic under test — breaker probe scheduling and admission
//     queue-wait accounting advance on a FakeClock exactly as the test
//     dictates.
//
// Everything is nil-safe in the style of internal/obs: a nil *Admission
// admits instantly, a nil *RetryBudget always allows, a nil *Breaker is
// always closed. Callers wire the layer unconditionally; "no limits
// configured" costs a predicted branch (guarded by the
// BenchmarkFaultSimulationOverload pair in the repo root).
package overload

import (
	"time"
)

// ErrOverloaded marks work that was shed by admission control rather
// than attempted: the queue was full, or the wait would have blown the
// caller's deadline. It is a fast, explicit refusal — nothing was
// simulated, nothing was written — so callers may retry later without
// fear of a partial artifact. The resilience layer (internal/run)
// treats it as retryable, never as poison.
//
// The sentinel implements Transient() bool so layers that must not
// import this package (internal/journal sits below it) can classify it
// structurally: errors.As(err, &interface{ Transient() bool }).
var ErrOverloaded error = shedError{}

type shedError struct{}

func (shedError) Error() string { return "overload: shed" }

// Transient marks the shed as environmental and retry-worthy: nothing
// was corrupted, the same work succeeds once load eases.
func (shedError) Transient() bool { return true }

// Clock abstracts the time source so shed decisions and breaker probe
// scheduling are deterministic under test. Production code uses
// SystemClock; tests drive a FakeClock.
type Clock interface {
	Now() time.Time
	// After behaves like time.After. Admission uses it only for
	// deadline bookkeeping, never for polling.
	After(d time.Duration) <-chan time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// SystemClock returns the real-time Clock.
func SystemClock() Clock { return systemClock{} }

// CampaignCost estimates one campaign's in-flight simulation weight:
// netlist size (gates × lanes) times PTP count times pattern-stream
// words. The unit is deliberately abstract — "simulation bytes" up to a
// constant factor — because admission control needs costs that are
// *proportional* across campaigns, not accurate in absolute terms: a
// campaign over twice the gates or twice the patterns should charge
// twice the capacity. Every factor is clamped to at least 1 so a
// degenerate input still charges something.
func CampaignCost(gates, lanes, ptps, patternWords int) int64 {
	c := int64(max(gates, 1)) * int64(max(lanes, 1))
	c *= int64(max(ptps, 1))
	c *= int64(max(patternWords, 1))
	if c <= 0 { // overflow paranoia: saturate, never wrap negative
		return 1 << 62
	}
	return c
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
