package overload

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"gpustl/internal/failpoint"
	"gpustl/internal/obs"
)

func TestCampaignCost(t *testing.T) {
	base := CampaignCost(100, 4, 10, 300)
	if base != 100*4*10*300 {
		t.Fatalf("cost = %d", base)
	}
	if got := CampaignCost(200, 4, 10, 300); got != 2*base {
		t.Fatalf("double gates: %d vs %d", got, 2*base)
	}
	if got := CampaignCost(100, 4, 10, 600); got != 2*base {
		t.Fatalf("double patterns: %d vs %d", got, 2*base)
	}
	if got := CampaignCost(0, 0, 0, 0); got != 1 {
		t.Fatalf("degenerate input should cost 1, got %d", got)
	}
	if got := CampaignCost(1<<31, 1<<31, 1<<31, 1<<31); got != 1<<62 {
		t.Fatalf("overflow should saturate at 1<<62, got %d", got)
	}
}

func TestFakeClock(t *testing.T) {
	c := NewFakeClock(time.Unix(1000, 0))
	ch := c.After(5 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired before Advance")
	default:
	}
	c.Advance(4 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired early")
	default:
	}
	c.Advance(time.Second)
	select {
	case <-ch:
	default:
		t.Fatal("did not fire at due time")
	}
	if got := c.Now(); !got.Equal(time.Unix(1005, 0)) {
		t.Fatalf("Now = %v", got)
	}
	// After(<=0) fires immediately.
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) should be ready")
	}
}

func TestAdmissionFastPath(t *testing.T) {
	a := NewAdmission(AdmissionOptions{Capacity: 100, MaxQueue: 4})
	rel, err := a.Acquire(context.Background(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Inflight(); got != 60 {
		t.Fatalf("inflight = %d", got)
	}
	rel()
	rel() // release is once-only; double call must not underflow
	if got := a.Inflight(); got != 0 {
		t.Fatalf("inflight after release = %d", got)
	}
	if a.Admitted() != 1 || a.Shed() != 0 {
		t.Fatalf("admitted=%d shed=%d", a.Admitted(), a.Shed())
	}
}

func TestAdmissionQueueFIFO(t *testing.T) {
	a := NewAdmission(AdmissionOptions{Capacity: 10, MaxQueue: 4})
	rel, err := a.Acquire(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	type got struct {
		idx int
		err error
	}
	order := make(chan got, 2)
	start := make(chan struct{})
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			if i == 1 {
				<-start // enqueue 0 first, then 1: FIFO order is observable
			}
			r, err := a.Acquire(context.Background(), 6)
			order <- got{i, err}
			if err == nil {
				time.Sleep(5 * time.Millisecond)
				r()
			}
		}()
		waitQueueLen(t, a, i+1)
		if i == 0 {
			close(start)
		}
	}
	rel()
	first := <-order
	if first.err != nil || first.idx != 0 {
		t.Fatalf("first grant = %+v, want waiter 0", first)
	}
	second := <-order
	if second.err != nil || second.idx != 1 {
		t.Fatalf("second grant = %+v, want waiter 1", second)
	}
}

func waitQueueLen(t *testing.T, a *Admission, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for a.QueueLen() < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (at %d)", n, a.QueueLen())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestAdmissionShedQueueFull(t *testing.T) {
	m := obs.NewRegistry()
	a := NewAdmission(AdmissionOptions{Capacity: 1, MaxQueue: 0, Metrics: m, Name: "t"})
	rel, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if _, err := a.Acquire(context.Background(), 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	snap := m.Snapshot()
	if snap.Counters[`gpustl_overload_shed_total{pool="t",reason="queue_full"}`] != 1 {
		t.Fatalf("shed counter missing: %v", snap.Counters)
	}
}

func TestAdmissionShedDeadline(t *testing.T) {
	a := NewAdmission(AdmissionOptions{Capacity: 1, MaxQueue: 4})
	rel, _ := a.Acquire(context.Background(), 1)
	defer rel()

	// Expired on arrival: shed without queueing.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := a.Acquire(ctx, 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expired-on-arrival: want ErrOverloaded, got %v", err)
	}
	if a.QueueLen() != 0 {
		t.Fatal("dead-on-arrival request was queued")
	}

	// Dies while waiting: shed when the context does.
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx2, 1)
		done <- err
	}()
	waitQueueLen(t, a, 1)
	cancel2()
	if err := <-done; !errors.Is(err, ErrOverloaded) {
		t.Fatalf("canceled waiter: want ErrOverloaded, got %v", err)
	}
	if a.QueueLen() != 0 {
		t.Fatal("canceled waiter left in queue")
	}
}

func TestAdmissionCostClamp(t *testing.T) {
	a := NewAdmission(AdmissionOptions{Capacity: 10, MaxQueue: 0})
	rel, err := a.Acquire(context.Background(), 1<<40) // larger than the pool: clamped, runs alone
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Inflight(); got != 10 {
		t.Fatalf("clamped inflight = %d", got)
	}
	rel()
}

func TestAdmissionTryAcquire(t *testing.T) {
	a := NewAdmission(AdmissionOptions{Capacity: 5, MaxQueue: 8})
	rel, ok := a.TryAcquire(5)
	if !ok {
		t.Fatal("first TryAcquire refused")
	}
	if _, ok := a.TryAcquire(1); ok {
		t.Fatal("saturated TryAcquire admitted")
	}
	rel()
	rel2, ok := a.TryAcquire(1)
	if !ok {
		t.Fatal("TryAcquire after release refused")
	}
	rel2()
}

func TestAdmissionNil(t *testing.T) {
	var a *Admission
	rel, err := a.Acquire(context.Background(), 1<<60)
	if err != nil || rel == nil {
		t.Fatalf("nil admission must admit: %v", err)
	}
	rel()
	rel2, ok := a.TryAcquire(1)
	if !ok {
		t.Fatal("nil TryAcquire refused")
	}
	rel2()
	if a.Inflight() != 0 || a.QueueLen() != 0 || a.Admitted() != 0 || a.Shed() != 0 {
		t.Fatal("nil accessors must be zero")
	}
}

func TestAdmissionFailpointShed(t *testing.T) {
	if err := failpoint.Enable("overload.admit.shed", failpoint.Config{Kind: failpoint.KindError, Times: 1}); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable("overload.admit.shed")
	a := NewAdmission(AdmissionOptions{Capacity: 100, MaxQueue: 4})
	if _, err := a.Acquire(context.Background(), 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("armed shed site: want ErrOverloaded, got %v", err)
	}
	if rel, err := a.Acquire(context.Background(), 1); err != nil { // Times:1 exhausted
		t.Fatalf("second acquire should pass: %v", err)
	} else {
		rel()
	}
	if a.Shed() != 1 {
		t.Fatalf("shed = %d", a.Shed())
	}
}

func TestAdmissionFailpointDelay(t *testing.T) {
	if err := failpoint.Enable("overload.admit.delay", failpoint.Config{Kind: failpoint.KindDelay, Delay: 2 * time.Millisecond, Times: 1}); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable("overload.admit.delay")
	a := NewAdmission(AdmissionOptions{Capacity: 100, MaxQueue: 4})
	t0 := time.Now()
	rel, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	if d := time.Since(t0); d < 2*time.Millisecond {
		t.Fatalf("delay site did not delay (%v)", d)
	}
	// Armed as an error kind, the delay site degrades into a shed.
	if err := failpoint.Enable("overload.admit.delay", failpoint.Config{Kind: failpoint.KindError, Times: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Acquire(context.Background(), 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("error-armed delay site: want ErrOverloaded, got %v", err)
	}
}

func TestRetryBudget(t *testing.T) {
	m := obs.NewRegistry()
	b := NewRetryBudget(0.5, 2, m)
	// Starts full: 2 tokens.
	if !b.Allow() || !b.Allow() {
		t.Fatal("burst tokens should allow 2 retries")
	}
	if b.Allow() {
		t.Fatal("empty bucket allowed a retry")
	}
	b.OnRequest() // +0.5 — still under 1 whole token
	if b.Allow() {
		t.Fatal("half a token allowed a retry")
	}
	b.OnRequest() // +0.5 = 1.0
	if !b.Allow() {
		t.Fatal("earned token denied")
	}
	for i := 0; i < 100; i++ {
		b.OnRequest()
	}
	if got := b.Tokens(); got != 2 {
		t.Fatalf("tokens should cap at burst: %g", got)
	}
	snap := m.Snapshot()
	if snap.Counters["gpustl_overload_retries_denied_total"] != 2 {
		t.Fatalf("denied counter: %v", snap.Counters)
	}
	if snap.Counters["gpustl_overload_retry_tokens_spent_total"] != 3 {
		t.Fatalf("spent counter: %v", snap.Counters)
	}
}

func TestRetryBudgetDisabledAndNil(t *testing.T) {
	if b := NewRetryBudget(-1, 10, nil); b != nil {
		t.Fatal("negative ratio should disable (nil)")
	}
	if b := NewRetryBudget(0.1, 0, nil); b != nil {
		t.Fatal("zero burst should disable (nil)")
	}
	var b *RetryBudget
	for i := 0; i < 1000; i++ {
		if !b.Allow() {
			t.Fatal("nil budget must always allow")
		}
	}
	b.OnRequest()
}

func TestBreakerLifecycle(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	b := NewBreaker(BreakerOptions{FailureThreshold: 3, OpenFor: 10 * time.Second, JitterFrac: -1, Clock: clk})
	if b.State() != BreakerClosed || !b.Ready() || !b.Acquire() {
		t.Fatal("new breaker should be closed and ready")
	}
	b.OnFailure()
	b.OnFailure()
	if b.State() != BreakerClosed {
		t.Fatal("under threshold must stay closed")
	}
	b.OnSuccess() // resets the consecutive count
	b.OnFailure()
	b.OnFailure()
	if b.State() != BreakerClosed {
		t.Fatal("success must reset consecutive failures")
	}
	b.OnFailure()
	if b.State() != BreakerOpen || b.Ready() || b.Acquire() {
		t.Fatal("threshold'th consecutive failure must open")
	}
	if b.Opens() != 1 {
		t.Fatalf("opens = %d", b.Opens())
	}

	clk.Advance(9 * time.Second)
	if b.Ready() {
		t.Fatal("ready before cool-down elapsed")
	}
	clk.Advance(time.Second)
	if b.State() != BreakerHalfOpen || !b.Ready() {
		t.Fatal("cool-down elapsed: should be half-open and ready")
	}
	// Exactly one probe slot.
	if !b.Acquire() {
		t.Fatal("first half-open Acquire must claim the probe")
	}
	if b.Ready() || b.Acquire() {
		t.Fatal("second dispatcher must be refused while probing")
	}
	b.OnSuccess()
	if b.State() != BreakerClosed || !b.Ready() {
		t.Fatal("successful probe must close")
	}

	// Failed probe reopens for a fresh cool-down.
	for i := 0; i < 3; i++ {
		b.OnFailure()
	}
	clk.Advance(10 * time.Second)
	if !b.Acquire() {
		t.Fatal("probe after second trip")
	}
	b.OnFailure()
	if b.State() != BreakerOpen || b.Opens() != 3 {
		t.Fatalf("failed probe must reopen: state=%v opens=%d", b.State(), b.Opens())
	}
}

func TestBreakerJitterDeterministic(t *testing.T) {
	// Same seed ⇒ same probe schedule; different seeds ⇒ (almost surely)
	// different. That is the whole point of seeded jitter.
	open := func(seed int64) time.Duration {
		clk := NewFakeClock(time.Unix(0, 0))
		b := NewBreaker(BreakerOptions{FailureThreshold: 1, OpenFor: 10 * time.Second, JitterFrac: 1, Seed: seed, Clock: clk})
		b.OnFailure()
		var d time.Duration
		for step := time.Second; !b.Ready(); d += step {
			clk.Advance(step)
		}
		return d
	}
	if open(1) != open(1) {
		t.Fatal("same seed must give the same cool-down")
	}
	if open(1) == open(2) && open(3) == open(4) {
		t.Fatal("different seeds should jitter differently")
	}
	d := open(7)
	if d < 10*time.Second || d > 21*time.Second {
		t.Fatalf("jittered cool-down %v outside [OpenFor, 2*OpenFor]", d)
	}
}

func TestBreakerNil(t *testing.T) {
	var b *Breaker
	if !b.Ready() || !b.Acquire() || b.State() != BreakerClosed || b.Opens() != 0 {
		t.Fatal("nil breaker must be permanently closed")
	}
	b.OnSuccess()
	b.OnFailure()
}

func TestAdmissionMetrics(t *testing.T) {
	m := obs.NewRegistry()
	a := NewAdmission(AdmissionOptions{Capacity: 2, MaxQueue: 2, Metrics: m, Name: "camp"})
	rel, _ := a.Acquire(context.Background(), 2)
	done := make(chan struct{})
	go func() {
		r, err := a.Acquire(context.Background(), 1)
		if err == nil {
			r()
		}
		close(done)
	}()
	waitQueueLen(t, a, 1)
	rel()
	<-done
	snap := m.Snapshot()
	if snap.Counters[`gpustl_overload_admitted_total{pool="camp"}`] != 2 {
		t.Fatalf("admitted: %v", snap.Counters)
	}
	if snap.Counters[`gpustl_overload_queued_total{pool="camp"}`] != 1 {
		t.Fatalf("queued: %v", snap.Counters)
	}
	h := snap.Histograms[`gpustl_overload_queue_wait_seconds{pool="camp"}`]
	if h.Count != 2 {
		t.Fatalf("wait histogram count = %d", h.Count)
	}
	var buf strings.Builder
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "gpustl_overload_admitted_total") {
		t.Fatal("prometheus output missing overload series")
	}
}

// BenchmarkAdmissionAcquireRelease is the uncontended admission
// overhead — the cost every admitted campaign pays.
func BenchmarkAdmissionAcquireRelease(b *testing.B) {
	a := NewAdmission(AdmissionOptions{Capacity: 1 << 40, MaxQueue: 16})
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rel, err := a.Acquire(ctx, 1024)
		if err != nil {
			b.Fatal(err)
		}
		rel()
	}
}

// BenchmarkAdmissionShed is the shed latency — how fast a refused
// caller learns its fate. Shedding must be cheap: its entire value is
// failing fast.
func BenchmarkAdmissionShed(b *testing.B) {
	a := NewAdmission(AdmissionOptions{Capacity: 1, MaxQueue: 0})
	rel, err := a.Acquire(context.Background(), 1)
	if err != nil {
		b.Fatal(err)
	}
	defer rel()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Acquire(ctx, 1); !errors.Is(err, ErrOverloaded) {
			b.Fatal("expected shed")
		}
	}
}

// BenchmarkAdmissionNil is the disarmed fast path: what "no limits
// configured" costs at the admission call site.
func BenchmarkAdmissionNil(b *testing.B) {
	var a *Admission
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rel, _ := a.Acquire(ctx, 1024)
		rel()
	}
}

func BenchmarkRetryBudget(b *testing.B) {
	rb := NewRetryBudget(0.1, 64, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rb.OnRequest()
		rb.Allow()
	}
}

func BenchmarkBreakerReady(b *testing.B) {
	br := NewBreaker(BreakerOptions{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !br.Ready() {
			b.Fatal("closed breaker not ready")
		}
	}
}
