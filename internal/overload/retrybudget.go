package overload

import (
	"math"
	"sync"

	"gpustl/internal/obs"
)

// RetryBudget is a token bucket bounding retries to a fraction of
// requests. Every first attempt deposits Ratio tokens (capped at
// Burst); every retry withdraws one whole token, and a retry that
// cannot be paid for is denied. At Ratio 0.1 a steady stream of
// requests earns one retry per ten — the classic 10% retry budget that
// lets individual flakes recover while making a fleet-wide retry storm
// arithmetically impossible.
//
// The bucket starts full (Burst tokens) so a cold coordinator can
// absorb an early failure burst; what it cannot do is *sustain* one.
// A nil *RetryBudget always allows.
type RetryBudget struct {
	mu     sync.Mutex
	ratio  float64
	burst  float64
	tokens float64

	mEarned *obs.Counter
	mSpent  *obs.Counter
	mDenied *obs.Counter
	mTokens *obs.Gauge
}

// NewRetryBudget creates a budget earning ratio tokens per request with
// at most burst banked. ratio <= 0 or burst <= 0 disables the budget
// (returns nil — always allow), so callers can thread configuration
// straight through.
func NewRetryBudget(ratio float64, burst int, m *obs.Registry) *RetryBudget {
	if ratio <= 0 || burst <= 0 {
		return nil
	}
	b := &RetryBudget{ratio: ratio, burst: float64(burst), tokens: float64(burst)}
	if m != nil {
		b.mEarned = m.Counter("gpustl_overload_retry_tokens_earned_total")
		b.mSpent = m.Counter("gpustl_overload_retry_tokens_spent_total")
		b.mDenied = m.Counter("gpustl_overload_retries_denied_total")
		b.mTokens = m.Gauge("gpustl_overload_retry_tokens")
		b.mTokens.Set(b.tokens)
	}
	return b
}

// OnRequest credits the budget for one first attempt.
func (b *RetryBudget) OnRequest() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mTokens.Set(b.tokens)
	b.mu.Unlock()
	b.mEarned.Inc()
}

// Allow consumes one token for a retry, reporting whether the retry is
// within budget. A denied retry consumes nothing.
func (b *RetryBudget) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	if b.tokens < 1 {
		b.mu.Unlock()
		b.mDenied.Inc()
		return false
	}
	b.tokens--
	b.mTokens.Set(b.tokens)
	b.mu.Unlock()
	b.mSpent.Inc()
	return true
}

// Tokens returns the current balance (for tests; +Inf on nil).
func (b *RetryBudget) Tokens() float64 {
	if b == nil {
		return math.Inf(1)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
