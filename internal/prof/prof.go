// Package prof wires the standard -cpuprofile/-memprofile flags into the
// CLIs, so engine work (the optimized fault simulator above all) can be
// profiled in production runs without a test harness.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into path and returns the stop function the
// caller must defer. An empty path is a no-op.
func Start(path string) (func(), error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("prof: creating cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("prof: starting cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap dumps an allocation profile to path at call time (after a
// GC, so live objects are accurate). An empty path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prof: creating mem profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("prof: writing mem profile: %w", err)
	}
	return nil
}
