package ptpgen

import (
	"gpustl/internal/circuits"
	"gpustl/internal/isa"
	"gpustl/internal/stl"
)

// patchBranch resolves a placeholder branch displacement to targetPC.
func (e *emitter) patchBranch(idx, targetPC int) {
	e.prog[idx].Imm = int32(targetPC - (idx + 1))
}

// protectOne marks a single instruction as protected.
func (e *emitter) protectOne(idx int) {
	e.prot = append(e.prot, stl.Region{Start: idx, End: idx + 1})
}

// cntrlPlainSB emits a short admissible SB (the CNTRL PTP mixes immediate,
// memory and register instructions between control constructs).
func (e *emitter) cntrlPlainSB() {
	r := e.rng
	e.beginSB()
	e.mvi(regT0, randImm(r))
	e.mvi(regT1, randImm(r))
	n := 3 + r.Intn(3)
	srcs := []uint8{regT0, regT1, regT2}
	for i := 0; i < n; i++ {
		e.emitRandALUOp(uint8(regT2+r.Intn(2)), srcs)
	}
	e.fold(regT2)
	e.sigStore()
	e.endSB()
}

// cntrlIfElse emits a divergent if/else: the condition/branch scaffolding
// is protected (removing it would break the devised control test), the two
// arms are admissible SBs. Conditions alternate between the lane id
// (within-warp divergence) and the raw thread id (whole warps take
// different arms), exercising both divergence modes of the SM.
func (e *emitter) cntrlIfElse(threads int) {
	r := e.rng

	var pLane, pSet int
	if r.Intn(2) == 0 {
		// Within-warp divergence on the lane id.
		k := int32(1 + r.Intn(30))
		pLane = e.op(isa.OpANDI, regT5, regTID, 0)
		e.prog[pLane].Imm = 31
		pSet = e.emit(isa.Instruction{Op: isa.OpISETI, Rd: regT4, Ra: regT5,
			Imm: k, Cond: isa.CondLT, Pd: 0})
	} else {
		// Warp-level (and at the boundary, within-warp) divergence on tid.
		k := int32(1 + r.Intn(threads-1))
		pLane = e.op(isa.OpMOV, regT5, regTID, 0)
		pSet = e.emit(isa.Instruction{Op: isa.OpISETI, Rd: regT4, Ra: regT5,
			Imm: k, Cond: isa.CondLT, Pd: 0})
	}
	pSSY := e.emit(isa.Instruction{Op: isa.OpSSY})
	pBra := e.emitGuarded(isa.Instruction{Op: isa.OpBRA, Pg: 0, PSense: true})
	e.protectOne(pLane)
	e.protectOne(pSet)

	// Then-arm (taken when lane >= k: branch jumps when P0 true).
	e.cntrlPlainSB()
	pJmp := e.emit(isa.Instruction{Op: isa.OpBRA})

	elseStart := len(e.prog)
	e.cntrlPlainSB()
	endif := len(e.prog)

	e.patchBranch(pSSY, endif)
	e.patchBranch(pBra, elseStart)
	e.patchBranch(pJmp, endif)
}

// cntrlLoop emits a parametric loop whose trip count is computed at run
// time from the thread id — the inadmissible-region case of stage 1.
func (e *emitter) cntrlLoop() {
	r := e.rng
	h0 := e.op(isa.OpANDI, regTrip, regTID, 0)
	e.prog[h0].Imm = 7
	e.opi(isa.OpIADDI, regTrip, regTrip, 1)
	e.mvi(regLoop, 0)
	pSSY := e.emit(isa.Instruction{Op: isa.OpSSY})
	e.prot = append(e.prot, stl.Region{Start: h0, End: len(e.prog)})

	loopStart := len(e.prog)
	n := 2 + r.Intn(3)
	srcs := []uint8{regT0, regT1, regLoop}
	for i := 0; i < n; i++ {
		e.emitRandALUOp(uint8(regT0+r.Intn(2)), srcs)
	}
	e.fold(regT0)
	e.opi(isa.OpIADDI, regLoop, regLoop, 1)
	e.emit(isa.Instruction{Op: isa.OpISET, Rd: regT4, Ra: regLoop, Rb: regTrip,
		Cond: isa.CondLT, Pd: 0})
	pBack := e.emitGuarded(isa.Instruction{Op: isa.OpBRA, Pg: 0, PSense: true})
	e.patchBranch(pBack, loopStart)
	after := len(e.prog)
	e.patchBranch(pSSY, after)
	e.sigStore()
}

// CNTRL generates the control-oriented DU PTP: 1 block × 1024 threads,
// mixing plain SBs, divergent if/else constructs and parametric loops.
// sections controls the scale (the paper's CNTRL has 336 instructions).
func CNTRL(sections int, seed int64) *stl.PTP {
	return CNTRLThreads(sections, 1024, seed)
}

// CNTRLThreads is CNTRL with a configurable block size; the STL's
// non-candidate remainder uses smaller blocks.
func CNTRLThreads(sections, threads int, seed int64) *stl.PTP {
	e := newEmitter(seed)
	e.prologue(0xC0FFEE03)
	for i := 0; i < sections; i++ {
		switch i % 5 {
		case 0, 2:
			e.cntrlPlainSB()
		case 1, 3:
			e.cntrlIfElse(threads)
		default:
			e.cntrlLoop()
		}
	}
	e.epilogue()
	return e.finish("CNTRL", circuits.ModuleDU,
		stl.KernelConfig{Blocks: 1, ThreadsPerBlock: threads})
}
