package ptpgen

import (
	"gpustl/internal/circuits"
	"gpustl/internal/isa"
	"gpustl/internal/stl"
)

// spOpFor maps an SP datapath function to the instruction realizing it.
var spOpFor = map[circuits.SPFn]isa.Opcode{
	circuits.SPAdd: isa.OpIADD,
	circuits.SPSub: isa.OpISUB,
	circuits.SPMul: isa.OpIMUL,
	circuits.SPMad: isa.OpIMAD,
	circuits.SPMin: isa.OpIMIN,
	circuits.SPMax: isa.OpIMAX,
	circuits.SPAnd: isa.OpAND,
	circuits.SPOr:  isa.OpOR,
	circuits.SPXor: isa.OpXOR,
	circuits.SPNot: isa.OpNOT,
	circuits.SPShl: isa.OpSHL,
	circuits.SPShr: isa.OpSHR,
	circuits.SPSet: isa.OpISET,
	// SPPass is realized by MOV (operand routed through b).
	circuits.SPPass: isa.OpMOV,
}

// TPGEN converts ATPG-generated SP test patterns into the TPGEN PTP, one
// Small Block per pattern. Patterns with no instruction equivalent (ATPG
// may produce function or condition encodings outside the legal set) are
// dropped; the second return value counts them — the paper's "patterns
// converted partially due to a lack of fully equivalent instructions".
func TPGEN(pats []circuits.Pattern, seed int64) (*stl.PTP, int) {
	e := newEmitter(seed)
	e.prologue(0xC0FFEE05)
	dropped := 0
	for _, p := range pats {
		fnRaw, condRaw, a, b, c := circuits.DecodeSPPattern(p)
		if int(fnRaw) >= circuits.NumSPFns {
			dropped++
			continue
		}
		fn := circuits.SPFn(fnRaw)
		if fn == circuits.SPSet && int(condRaw) >= isa.NumConds {
			dropped++
			continue
		}
		e.beginSB()
		switch fn {
		case circuits.SPMad:
			e.mvi(regT0, a)
			e.mvi(regT1, b)
			e.mvi(regT3, c) // accumulator preload: IMAD reads Rd
			e.op(isa.OpIMAD, regT3, regT0, regT1)
		case circuits.SPNot:
			e.mvi(regT0, a)
			e.op(isa.OpNOT, regT3, regT0, 0)
		case circuits.SPPass:
			e.mvi(regT0, b)
			e.op(isa.OpMOV, regT3, regT0, 0)
		case circuits.SPSet:
			e.mvi(regT0, a)
			e.mvi(regT1, b)
			e.emit(isa.Instruction{Op: isa.OpISET, Rd: regT3, Ra: regT0,
				Rb: regT1, Cond: isa.Cond(condRaw), Pd: 1})
		default:
			e.mvi(regT0, a)
			e.mvi(regT1, b)
			e.op(spOpFor[fn], regT3, regT0, regT1)
		}
		e.fold(regT3)
		e.sigStore()
		e.endSB()
	}
	e.epilogue()
	return e.finish("TPGEN", circuits.ModuleSP,
		stl.KernelConfig{Blocks: 1, ThreadsPerBlock: 32}), dropped
}

// sfuOpFor maps an SFU function to its instruction.
var sfuOpFor = [circuits.NumSFUFns]isa.Opcode{
	circuits.SFURcp: isa.OpRCP,
	circuits.SFURsq: isa.OpRSQ,
	circuits.SFUSin: isa.OpSIN,
	circuits.SFUCos: isa.OpCOS,
	circuits.SFULg2: isa.OpLG2,
	circuits.SFUEx2: isa.OpEX2,
}

// SFUIMM converts ATPG-generated SFU test patterns into the SFU_IMM PTP.
// Each SB loads the operand bit pattern with an immediate move, executes
// the SFU operation, and propagates through the SpT fold — SBs have no
// data dependence on each other (beyond the signature), which is why the
// paper observes zero FC loss when compacting this PTP.
func SFUIMM(pats []circuits.Pattern, seed int64) (*stl.PTP, int) {
	e := newEmitter(seed)
	e.prologue(0xC0FFEE06)
	dropped := 0
	for _, p := range pats {
		fnRaw, a := circuits.DecodeSFUPattern(p)
		if int(fnRaw) >= circuits.NumSFUFns {
			dropped++
			continue
		}
		e.beginSB()
		e.mvi(regT0, a)
		e.op(sfuOpFor[fnRaw], regT3, regT0, 0)
		e.fold(regT3)
		e.sigStore()
		e.endSB()
	}
	e.epilogue()
	return e.finish("SFU_IMM", circuits.ModuleSFU,
		stl.KernelConfig{Blocks: 1, ThreadsPerBlock: 32}), dropped
}
