package ptpgen

import (
	"gpustl/internal/circuits"
	"gpustl/internal/isa"
	"gpustl/internal/stl"
)

// DIVG generates a divergence-stack test PTP in the style of the
// control-unit STL parts the paper excludes from compaction (its refs [6],
// [21]): nested two-way divergence on the thread-id bits down to `depth`
// levels, pushing the SIMT stack to its deepest use, with a unique
// signature constant folded at every leaf so any mis-reconvergence
// corrupts some thread's signature. The whole body is protected — removing
// any instruction breaks the devised stack walk, which is exactly why such
// PTPs are excluded from compaction.
func DIVG(depth, repeats int, seed int64) *stl.PTP {
	if depth < 1 {
		depth = 1
	}
	if depth > 5 {
		depth = 5
	}
	e := newEmitter(seed)
	e.prologue(0xC0FFEE08)
	bodyStart := len(e.prog)
	leafID := 0
	for rep := 0; rep < repeats; rep++ {
		e.divgLevel(depth, &leafID)
		e.sigStore()
	}
	e.prot = append(e.prot, stl.Region{Start: bodyStart, End: len(e.prog)})
	e.epilogue()
	p := e.finish("DIVG", circuits.ModuleDU,
		stl.KernelConfig{Blocks: 1, ThreadsPerBlock: 32})
	p.SBs = nil // nothing is a compaction candidate
	return p
}

// DivgLeafConst is the signature constant folded at leaf id (exported for
// the expected-signature computation in tests and diagnostics).
func DivgLeafConst(id int) uint32 {
	return 0x9E3779B9*uint32(id+1) ^ 0x5bd1e995
}

// divgLevel emits one divergence level: threads with tid bit (level-1)
// set fall through into the first arm; the rest branch to the second.
func (e *emitter) divgLevel(level int, leafID *int) {
	if level == 0 {
		e.mvi(regT0, DivgLeafConst(*leafID))
		*leafID++
		e.fold(regT0)
		return
	}
	bit := int32(1) << uint(level-1)
	m := e.op(isa.OpANDI, regT4, regTID, 0)
	e.prog[m].Imm = bit
	e.emit(isa.Instruction{Op: isa.OpISETI, Rd: regT4, Ra: regT4,
		Imm: 0, Cond: isa.CondEQ, Pd: 0})
	pSSY := e.emit(isa.Instruction{Op: isa.OpSSY})
	pBra := e.emitGuarded(isa.Instruction{Op: isa.OpBRA, Pg: 0, PSense: true})

	// First arm: bit set (P0 false falls through).
	e.divgLevel(level-1, leafID)
	pJmp := e.emit(isa.Instruction{Op: isa.OpBRA})

	// Second arm: bit clear.
	secondStart := len(e.prog)
	e.divgLevel(level-1, leafID)
	end := len(e.prog)

	e.patchBranch(pSSY, end)
	e.patchBranch(pBra, secondStart)
	e.patchBranch(pJmp, end)
}

// DivgExpectedLeaf computes which leaf a thread visits per repeat, for
// signature prediction: at each level, a set tid bit selects the first
// (lower-id) half of the remaining leaves.
func DivgExpectedLeaf(tid, depth int) int {
	id := 0
	span := 1 << uint(depth)
	for level := depth; level >= 1; level-- {
		span /= 2
		if tid&(1<<uint(level-1)) == 0 {
			id += span
		}
	}
	return id
}
