package ptpgen

import (
	"testing"

	"gpustl/internal/gpu"
	"gpustl/internal/signature"
)

// TestDIVGSignatures runs the divergence-stack PTP and checks every
// thread's stored signature against the software-predicted value of its
// unique path through the nested divergence — the strongest end-to-end
// check of the SIMT stack machinery.
func TestDIVGSignatures(t *testing.T) {
	for _, depth := range []int{1, 2, 3, 4, 5} {
		const repeats = 3
		p := DIVG(depth, repeats, 1)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		g, err := gpu.New(gpu.DefaultConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := g.Run(gpu.Kernel{
			Prog: p.Prog, Blocks: p.Kernel.Blocks,
			ThreadsPerBlock: p.Kernel.ThreadsPerBlock,
		})
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		leavesPerRepeat := 1 << uint(depth)
		for tid := 0; tid < 32; tid++ {
			// Prologue: sig = seed ^ tid; one leaf fold per repeat.
			sig := uint32(0xC0FFEE08) ^ uint32(tid)
			leaf := DivgExpectedLeaf(tid, depth)
			for rep := 0; rep < repeats; rep++ {
				sig = signature.Fold(sig, DivgLeafConst(rep*leavesPerRepeat+leaf))
			}
			got := res.Global[(SigBase+4*uint32(tid))/4]
			if got != sig {
				t.Fatalf("depth %d thread %d: signature %#x, want %#x",
					depth, tid, got, sig)
			}
		}
	}
}

// TestDIVGFullyProtected checks the PTP exposes no compaction candidates.
func TestDIVGFullyProtected(t *testing.T) {
	p := DIVG(3, 2, 2)
	if len(p.SBs) != 0 {
		t.Errorf("DIVG has %d candidate SBs", len(p.SBs))
	}
	if len(p.ARCs()) != 0 {
		t.Errorf("DIVG exposes admissible regions: %+v", p.ARCs())
	}
}

// TestDIVGDepthClamp checks the depth limits.
func TestDIVGDepthClamp(t *testing.T) {
	if p := DIVG(0, 1, 3); len(p.Prog) == 0 {
		t.Error("depth 0 produced nothing")
	}
	if p := DIVG(99, 1, 3); len(p.Prog) == 0 {
		t.Error("clamped depth produced nothing")
	}
}
