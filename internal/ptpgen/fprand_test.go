package ptpgen

import (
	"testing"

	"gpustl/internal/circuits"
	"gpustl/internal/isa"
	"gpustl/internal/trace"
)

func TestFPRANDStructure(t *testing.T) {
	p := FPRAND(40, 31)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Target != circuits.ModuleFP32 {
		t.Errorf("target = %v", p.Target)
	}
	if len(p.SBs) != 40 {
		t.Fatalf("SBs = %d", len(p.SBs))
	}
	// Every FP32 function must be exercised.
	seen := map[isa.Opcode]bool{}
	for _, in := range p.Prog {
		seen[in.Op] = true
	}
	for _, op := range fpOps {
		if !seen[op] {
			t.Errorf("FPRAND does not cover %v", op)
		}
	}
	if f := p.ARCFraction(); f < 0.98 {
		t.Errorf("ARC fraction = %f", f)
	}
}

func TestFPRANDAppliesFP32Patterns(t *testing.T) {
	p := FPRAND(25, 33)
	col := trace.NewCollector(circuits.ModuleFP32)
	runPTP(t, p, col)
	if len(col.Patterns) == 0 {
		t.Fatal("no FP32 patterns")
	}
	// Patterns land on all 8 FP32 lanes and decode to legal functions.
	lanes := map[int16]bool{}
	for _, tp := range col.Patterns {
		lanes[tp.Lane] = true
		fn, _, _, _ := circuits.DecodeFP32Pattern(tp.Pat)
		if int(fn) >= circuits.NumFP32Fns {
			t.Fatalf("illegal fn %d in traced pattern", fn)
		}
	}
	if len(lanes) != 8 {
		t.Errorf("lanes covered: %d, want 8", len(lanes))
	}
	// The GL verification of the stage-2 gate-level simulation must pass
	// on the extracted stream.
	m, err := circuits.Build(circuits.ModuleFP32, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := trace.VerifyGL(m, col.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("GL mismatch: %s", rep)
	}
}
