// Package ptpgen generates the Parallel Test Programs that compose the
// evaluated STL, reproducing the construction recipes Table I documents:
//
//   - IMM    — pseudorandom DU test over every immediate-operand instruction
//     format plus register formats; 1 block × 32 threads.
//   - MEM    — pseudorandom DU test built from memory-access instructions
//     (global and shared); 1 block × 32 threads.
//   - CNTRL  — DU/control test mixing immediate, memory and register
//     instructions to steer control-flow constructs; 1 block × 1024
//     threads; contains parametric loops (the inadmissible ~10%).
//   - RAND   — pseudorandom SP-core test; 1 block × 32 threads.
//   - TPGEN  — SP-core test converted from ATPG patterns; 1 block × 32
//     threads; patterns without an equivalent instruction are dropped
//     (the paper's "partial" conversion).
//   - SFUIMM — SFU test converted from ATPG patterns; 1 block × 32 threads.
//
// Every PTP follows the paper's three-part Small Block shape — load test
// operands, execute, propagate to an observable point — with the
// Signature-per-Thread fold (rotate-left-1 XOR, a MISR-like step) and a
// signature store as the propagation part. Prologue/epilogue scaffolding is
// emitted as protected regions so the compactor leaves it intact.
package ptpgen

import (
	"math/rand"

	"gpustl/internal/circuits"
	"gpustl/internal/isa"
	"gpustl/internal/stl"
)

// Register conventions of all generated PTPs.
const (
	regTID  = 0 // thread id
	regOff  = 1 // tid*4 byte offset
	regSig  = 2 // signature store address (sigBase + tid*4)
	regAcc  = 3 // signature accumulator
	regT0   = 4
	regT1   = 5
	regT2   = 6
	regT3   = 7
	regT4   = 8
	regT5   = 9
	regM0   = 10 // MISR fold temporaries
	regM1   = 11
	regLoop = 12 // loop counters (CNTRL)
	regTrip = 13
)

// Memory map of the generated kernels (byte addresses).
const (
	SigBase   = 0x10000 // per-thread signature slots (up to 1024 threads)
	DataBase  = 0x20000 // PTP input data segment
	SharedOff = 0       // shared-memory scratch base
)

// emitter accumulates a PTP under construction.
type emitter struct {
	prog  []isa.Instruction
	sbs   []stl.SB
	prot  []stl.Region
	data  []uint32
	rng   *rand.Rand
	sbAt  int // start of the SB being emitted
	addrI int // AddrInstr of the SB being emitted
	dOff  int // DataOff of the SB being emitted
	dLen  int
}

func newEmitter(seed int64) *emitter {
	return &emitter{rng: rand.New(rand.NewSource(seed)), addrI: -1, dOff: -1}
}

// emit appends an unguarded instruction (guard forced to "always").
func (e *emitter) emit(in isa.Instruction) int {
	in.Pg = isa.PredAlways
	in.PSense = true
	e.prog = append(e.prog, in)
	return len(e.prog) - 1
}

// emitGuarded appends an instruction with its guard fields untouched.
func (e *emitter) emitGuarded(in isa.Instruction) int {
	e.prog = append(e.prog, in)
	return len(e.prog) - 1
}

// store emits a store of rbVal to [raAddr+off].
func (e *emitter) store(op isa.Opcode, raAddr uint8, off int32, rbVal uint8) int {
	return e.emit(isa.Instruction{Op: op, Ra: raAddr, Imm: off, Rb: rbVal})
}

func (e *emitter) op(op isa.Opcode, rd, ra, rb uint8) int {
	return e.emit(isa.Instruction{Op: op, Rd: rd, Ra: ra, Rb: rb})
}

func (e *emitter) opi(op isa.Opcode, rd, ra uint8, imm int32) int {
	return e.emit(isa.Instruction{Op: op, Rd: rd, Ra: ra, Imm: imm})
}

func (e *emitter) mvi(rd uint8, imm uint32) int {
	return e.opi(isa.OpMVI, rd, 0, int32(imm))
}

// beginSB marks the start of a Small Block.
func (e *emitter) beginSB() {
	e.sbAt = len(e.prog)
	e.addrI = -1
	e.dOff = -1
	e.dLen = 0
}

// endSB closes the current Small Block.
func (e *emitter) endSB() {
	sb := stl.SB{Start: e.sbAt, End: len(e.prog), AddrInstr: -1}
	if e.dLen > 0 {
		sb.DataOff, sb.DataLen, sb.AddrInstr = e.dOff, e.dLen, e.addrI
	}
	e.sbs = append(e.sbs, sb)
}

// protect marks [from, len(prog)) as a protected region.
func (e *emitter) protect(from int) {
	e.prot = append(e.prot, stl.Region{Start: from, End: len(e.prog)})
}

// prologue emits the protected thread-setup code.
func (e *emitter) prologue(sigSeed uint32) {
	from := len(e.prog)
	e.opi(isa.OpS2R, regTID, 0, isa.SRTid)
	e.opi(isa.OpSHLI, regOff, regTID, 2)
	e.mvi(regSig, SigBase)
	e.op(isa.OpIADD, regSig, regSig, regOff)
	e.mvi(regAcc, sigSeed)
	e.op(isa.OpXOR, regAcc, regAcc, regTID)
	e.protect(from)
}

// epilogue emits the protected final signature store and EXIT.
func (e *emitter) epilogue() {
	from := len(e.prog)
	e.emit(isa.Instruction{Op: isa.OpGST, Ra: regSig, Rb: regAcc})
	e.emit(isa.Instruction{Op: isa.OpEXIT})
	e.protect(from)
}

// fold emits the SpT update: acc = rotl1(acc) ^ value — four SP-datapath
// instructions, the software MISR step of the paper's PTPs.
func (e *emitter) fold(valueReg uint8) {
	e.opi(isa.OpSHLI, regM0, regAcc, 1)
	e.opi(isa.OpSHRI, regM1, regAcc, 31)
	e.op(isa.OpOR, regAcc, regM0, regM1)
	e.op(isa.OpXOR, regAcc, regAcc, valueReg)
}

// sigStore emits the per-SB observable store of the signature.
func (e *emitter) sigStore() {
	e.emit(isa.Instruction{Op: isa.OpGST, Ra: regSig, Rb: regAcc})
}

func (e *emitter) finish(name string, target circuits.ModuleKind, kernel stl.KernelConfig) *stl.PTP {
	p := &stl.PTP{
		Name:      name,
		Target:    target,
		Prog:      e.prog,
		Kernel:    kernel,
		Data:      stl.DataSegment{Base: DataBase, Words: e.data},
		SBs:       e.sbs,
		Protected: e.prot,
	}
	return p
}

// immOps are the immediate-format opcodes the IMM PTP must cover.
var immOps = []isa.Opcode{
	isa.OpIADDI, isa.OpISUBI, isa.OpIMULI, isa.OpANDI, isa.OpORI,
	isa.OpXORI, isa.OpSHLI, isa.OpSHRI, isa.OpISETI,
}

// regOps are register-format ALU opcodes mixed into IMM and RAND SBs.
var regOps = []isa.Opcode{
	isa.OpIADD, isa.OpISUB, isa.OpIMUL, isa.OpIMAD, isa.OpIMIN, isa.OpIMAX,
	isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpNOT, isa.OpSHL, isa.OpSHR,
	isa.OpISET, isa.OpMOV, isa.OpINEG,
}

// randImm draws a 32-bit immediate biased toward corner values.
func randImm(r *rand.Rand) uint32 {
	switch r.Intn(5) {
	case 0:
		return uint32(r.Intn(64)) // small shift-friendly values
	case 1:
		corners := []uint32{0, 1, 0xffffffff, 0x80000000, 0x7fffffff, 0xaaaaaaaa, 0x55555555}
		return corners[r.Intn(len(corners))]
	default:
		return r.Uint32()
	}
}

// emitRandALUOp appends one random ALU operation writing rd.
func (e *emitter) emitRandALUOp(rd uint8, srcs []uint8) {
	r := e.rng
	pick := func() uint8 { return srcs[r.Intn(len(srcs))] }
	if r.Intn(2) == 0 {
		op := immOps[r.Intn(len(immOps))]
		in := isa.Instruction{Op: op, Rd: rd, Ra: pick(), Imm: int32(randImm(r))}
		if op == isa.OpISETI {
			in.Cond = isa.Cond(r.Intn(isa.NumConds))
			in.Pd = 1 // keep P0 free for control PTPs
		}
		e.emit(in)
		return
	}
	op := regOps[r.Intn(len(regOps))]
	in := isa.Instruction{Op: op, Rd: rd, Ra: pick(), Rb: pick()}
	if op == isa.OpISET {
		in.Cond = isa.Cond(r.Intn(isa.NumConds))
		in.Pd = 1
	}
	e.emit(in)
}

// immSB emits one IMM-style Small Block (15–18 instructions, as the paper
// reports for the DU PTPs): operand loads, a run of immediate- and
// register-format operations, the SpT fold and the observable store.
func (e *emitter) immSB(coverIdx int) {
	r := e.rng
	e.beginSB()
	e.mvi(regT0, randImm(r))
	e.mvi(regT1, randImm(r))
	// Guarantee format coverage: cycle deterministically through the
	// immediate-format list, then pad with random ops.
	covered := immOps[coverIdx%len(immOps)]
	in := isa.Instruction{Op: covered, Rd: regT2, Ra: regT0, Imm: int32(randImm(r))}
	if covered == isa.OpISETI {
		in.Cond = isa.Cond(coverIdx % isa.NumConds)
		in.Pd = 1
	}
	e.emit(in)
	n := 7 + r.Intn(3)
	srcs := []uint8{regT0, regT1, regT2}
	for i := 0; i < n; i++ {
		e.emitRandALUOp(uint8(regT2+r.Intn(3)), srcs)
	}
	e.fold(uint8(regT2 + r.Intn(3)))
	e.sigStore()
	e.endSB()
}

// IMM generates the IMM PTP for the Decoder Unit.
func IMM(numSBs int, seed int64) *stl.PTP {
	e := newEmitter(seed)
	e.prologue(0xC0FFEE01)
	for i := 0; i < numSBs; i++ {
		e.immSB(i)
	}
	e.epilogue()
	return e.finish("IMM", circuits.ModuleDU,
		stl.KernelConfig{Blocks: 1, ThreadsPerBlock: 32})
}

// memSB emits one MEM-style Small Block: global loads from the SB's data
// rows, a combining operation, a shared-memory store/load bounce, the SpT
// fold and the observable store.
func (e *emitter) memSB(threads int) {
	r := e.rng
	e.beginSB()
	// Two data rows of one word per thread.
	e.dOff = len(e.data)
	for i := 0; i < 2*threads; i++ {
		e.data = append(e.data, r.Uint32())
	}
	e.dLen = 2 * threads
	e.addrI = e.mvi(regT0, DataBase+uint32(e.dOff)*4)
	e.op(isa.OpIADD, regT1, regT0, regOff)
	e.opi(isa.OpGLD, regT2, regT1, 0)
	e.opi(isa.OpGLD, regT3, regT1, int32(threads)*4)
	combine := []isa.Opcode{isa.OpIADD, isa.OpXOR, isa.OpIMUL, isa.OpOR, isa.OpISUB}
	e.op(combine[r.Intn(len(combine))], regT4, regT2, regT3)
	e.store(isa.OpSST, regOff, SharedOff, regT4)
	e.opi(isa.OpSLD, regT5, regOff, SharedOff)
	if r.Intn(3) == 0 {
		e.opi(isa.OpLDC, regT2, regOff, 0)
		e.op(isa.OpXOR, regT5, regT5, regT2)
	}
	e.fold(regT5)
	e.sigStore()
	e.endSB()
}

// MEM generates the MEM PTP for the Decoder Unit.
func MEM(numSBs int, seed int64) *stl.PTP {
	const threads = 32
	e := newEmitter(seed)
	e.prologue(0xC0FFEE02)
	for i := 0; i < numSBs; i++ {
		e.memSB(threads)
	}
	e.epilogue()
	p := e.finish("MEM", circuits.ModuleDU,
		stl.KernelConfig{Blocks: 1, ThreadsPerBlock: threads})
	return p
}

// fpOps are the FP32-unit opcodes FPRAND cycles through.
var fpOps = []isa.Opcode{
	isa.OpFADD, isa.OpFMUL, isa.OpFFMA, isa.OpFMIN, isa.OpFMAX,
	isa.OpF2I, isa.OpI2F,
}

// randFPBits draws an FP32 operand biased toward structured values.
func randFPBits(r *rand.Rand) uint32 {
	switch r.Intn(4) {
	case 0: // moderate-exponent normals keep chains of FP ops meaningful
		return r.Uint32()&0x807fffff | uint32(96+r.Intn(64))<<23
	case 1:
		corners := []uint32{0, 0x3f800000, 0xbf800000, 0x34000000, 0x4b000000}
		return corners[r.Intn(len(corners))]
	default:
		return r.Uint32()
	}
}

// FPRAND generates a pseudorandom PTP for the FP32 floating-point units —
// an extension beyond the paper's STL (which targets DU, SPs and SFUs
// only), enabled by the gate-level FP32 datapath. Each SB loads FP32 bit
// patterns with immediate moves, runs a chain of FP operations, converts
// the result to integer and folds it into the SpT.
func FPRAND(numSBs int, seed int64) *stl.PTP {
	e := newEmitter(seed)
	e.prologue(0xC0FFEE07)
	r := e.rng
	for i := 0; i < numSBs; i++ {
		e.beginSB()
		e.mvi(regT0, randFPBits(r))
		e.mvi(regT1, randFPBits(r))
		e.mvi(regT2, randFPBits(r))
		// Guarantee coverage of all FP functions, then add random ops.
		ops := []isa.Opcode{fpOps[i%len(fpOps)]}
		n := 2 + r.Intn(4)
		for j := 0; j < n; j++ {
			ops = append(ops, fpOps[r.Intn(len(fpOps))])
		}
		srcs := []uint8{regT0, regT1, regT2, regT3}
		for _, op := range ops {
			rd := uint8(regT3 + r.Intn(2))
			in := isa.Instruction{Op: op, Rd: rd,
				Ra: srcs[r.Intn(len(srcs))], Rb: srcs[r.Intn(len(srcs))]}
			e.emit(in)
		}
		// Propagate through the integer SpT: convert and fold.
		e.op(isa.OpF2I, regT5, uint8(regT3+r.Intn(2)), 0)
		e.fold(regT5)
		e.sigStore()
		e.endSB()
	}
	e.epilogue()
	return e.finish("FP_RAND", circuits.ModuleFP32,
		stl.KernelConfig{Blocks: 1, ThreadsPerBlock: 32})
}

// RAND generates the pseudorandom SP-core PTP.
func RAND(numSBs int, seed int64) *stl.PTP {
	e := newEmitter(seed)
	e.prologue(0xC0FFEE04)
	r := e.rng
	for i := 0; i < numSBs; i++ {
		e.beginSB()
		e.mvi(regT0, r.Uint32())
		e.mvi(regT1, r.Uint32())
		e.mvi(regT2, r.Uint32())
		// Per-thread diversity: mix the tid into one operand.
		e.op(isa.OpXOR, regT0, regT0, regTID)
		n := 5 + r.Intn(5)
		srcs := []uint8{regT0, regT1, regT2, regT3}
		for j := 0; j < n; j++ {
			e.emitRandALUOp(uint8(regT3+r.Intn(3)), srcs)
		}
		e.fold(uint8(regT3 + r.Intn(3)))
		e.sigStore()
		e.endSB()
	}
	e.epilogue()
	return e.finish("RAND", circuits.ModuleSP,
		stl.KernelConfig{Blocks: 1, ThreadsPerBlock: 32})
}
