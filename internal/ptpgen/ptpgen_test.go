package ptpgen

import (
	"math/rand"
	"testing"

	"gpustl/internal/circuits"
	"gpustl/internal/gpu"
	"gpustl/internal/isa"
	"gpustl/internal/stl"
	"gpustl/internal/trace"
)

// runPTP executes a PTP on the simulated GPU with an optional collector.
func runPTP(t *testing.T, p *stl.PTP, col *trace.Collector) gpu.Result {
	t.Helper()
	var mon gpu.Monitor
	if col != nil {
		mon = col
	}
	g, err := gpu.New(gpu.DefaultConfig(), mon)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(gpu.Kernel{
		Prog: p.Prog, Blocks: p.Kernel.Blocks, ThreadsPerBlock: p.Kernel.ThreadsPerBlock,
		GlobalBase: p.Data.Base, GlobalData: p.Data.Words,
	})
	if err != nil {
		t.Fatalf("%s failed to run: %v", p.Name, err)
	}
	return res
}

func TestIMMStructure(t *testing.T) {
	p := IMM(50, 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Target != circuits.ModuleDU || p.Kernel.ThreadsPerBlock != 32 {
		t.Errorf("target/kernel: %v %+v", p.Target, p.Kernel)
	}
	if len(p.SBs) != 50 {
		t.Fatalf("SBs = %d", len(p.SBs))
	}
	// The paper reports DU-PTP SBs of 15 to 18 instructions.
	for i, sb := range p.SBs {
		if sb.Len() < 14 || sb.Len() > 19 {
			t.Errorf("SB %d has %d instructions", i, sb.Len())
		}
	}
	// ARC must cover everything except the protected pro/epilogue — "100%"
	// at Table I's reporting granularity.
	if f := p.ARCFraction(); f < 0.98 {
		t.Errorf("IMM ARC fraction = %f", f)
	}
	// Every immediate-format opcode must appear.
	seen := map[isa.Opcode]bool{}
	for _, in := range p.Prog {
		seen[in.Op] = true
	}
	for _, op := range immOps {
		if !seen[op] {
			t.Errorf("IMM does not cover %v", op)
		}
	}
}

func TestIMMRuns(t *testing.T) {
	p := IMM(30, 2)
	col := trace.NewCollector(circuits.ModuleDU)
	runPTP(t, p, col)
	if len(col.Patterns) != len(p.Prog) {
		t.Errorf("DU patterns = %d, want %d (one per instruction, 1 warp)",
			len(col.Patterns), len(p.Prog))
	}
	if len(col.Stores) == 0 {
		t.Error("no observable stores")
	}
}

func TestIMMDeterminism(t *testing.T) {
	a, b := IMM(20, 7), IMM(20, 7)
	if len(a.Prog) != len(b.Prog) {
		t.Fatal("nondeterministic size")
	}
	for i := range a.Prog {
		if a.Prog[i] != b.Prog[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
	c := IMM(20, 8)
	same := len(a.Prog) == len(c.Prog)
	if same {
		identical := true
		for i := range a.Prog {
			if a.Prog[i] != c.Prog[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("different seeds produced identical programs")
		}
	}
}

func TestMEMStructure(t *testing.T) {
	p := MEM(40, 3)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.SBs) != 40 {
		t.Fatalf("SBs = %d", len(p.SBs))
	}
	if len(p.Data.Words) != 40*64 {
		t.Fatalf("data words = %d, want %d", len(p.Data.Words), 40*64)
	}
	for i, sb := range p.SBs {
		if sb.DataLen != 64 || sb.AddrInstr < sb.Start || sb.AddrInstr >= sb.End {
			t.Errorf("SB %d data meta: %+v", i, sb)
		}
		// The address instruction must be an MVI of the data address.
		in := p.Prog[sb.AddrInstr]
		if in.Op != isa.OpMVI || uint32(in.Imm) != p.Data.Base+uint32(sb.DataOff)*4 {
			t.Errorf("SB %d AddrInstr = %+v", i, in)
		}
	}
	// MEM must use global loads, shared stores and shared loads.
	seen := map[isa.Opcode]bool{}
	for _, in := range p.Prog {
		seen[in.Op] = true
	}
	for _, op := range []isa.Opcode{isa.OpGLD, isa.OpSST, isa.OpSLD, isa.OpGST} {
		if !seen[op] {
			t.Errorf("MEM does not use %v", op)
		}
	}
}

func TestMEMRuns(t *testing.T) {
	p := MEM(25, 4)
	col := trace.NewCollector(circuits.ModuleDU)
	runPTP(t, p, col)
	if len(col.Stores) == 0 {
		t.Error("no stores")
	}
}

func TestCNTRLStructure(t *testing.T) {
	p := CNTRL(20, 5)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Kernel.ThreadsPerBlock != 1024 {
		t.Errorf("CNTRL threads = %d, want 1024", p.Kernel.ThreadsPerBlock)
	}
	// Must contain control flow.
	seen := map[isa.Opcode]bool{}
	for _, in := range p.Prog {
		seen[in.Op] = true
	}
	if !seen[isa.OpBRA] || !seen[isa.OpSSY] {
		t.Error("CNTRL lacks control flow")
	}
	// ARC fraction around the paper's 90% (loops + scaffolding excluded).
	f := p.ARCFraction()
	if f < 0.60 || f > 0.97 {
		t.Errorf("CNTRL ARC fraction = %f, want ~0.9", f)
	}
	t.Logf("CNTRL: %d instructions, ARC %.1f%%", len(p.Prog), 100*f)
}

func TestCNTRLRunsWithDivergence(t *testing.T) {
	p := CNTRL(15, 6)
	res := runPTP(t, p, nil)
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
	// All 32 warps × sections instructions: CNTRL is by far the most
	// cycles per static instruction (1024 threads).
	perInstr := float64(res.Cycles) / float64(len(p.Prog))
	if perInstr < 500 {
		t.Errorf("cc per static instruction = %.0f, expected >500 for 32 warps", perInstr)
	}
}

func TestRANDStructure(t *testing.T) {
	p := RAND(60, 9)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Target != circuits.ModuleSP {
		t.Errorf("target = %v", p.Target)
	}
	if f := p.ARCFraction(); f < 0.98 {
		t.Errorf("RAND ARC fraction = %f", f)
	}
	col := trace.NewCollector(circuits.ModuleSP)
	runPTP(t, p, col)
	if len(col.Patterns) == 0 {
		t.Fatal("no SP patterns")
	}
	// All SP lanes must receive patterns.
	lanes := map[int16]int{}
	for _, pt := range col.Patterns {
		lanes[pt.Lane]++
	}
	if len(lanes) != 8 {
		t.Errorf("lanes covered: %d, want 8", len(lanes))
	}
}

// randomSPPatterns builds "ATPG-like" SP patterns including some with
// illegal fn/cond encodings.
func randomSPPatterns(n int, seed int64) []circuits.Pattern {
	r := rand.New(rand.NewSource(seed))
	pats := make([]circuits.Pattern, n)
	for i := range pats {
		fn := circuits.SPFn(r.Intn(16)) // 14..15 are illegal
		cond := isa.Cond(r.Intn(8))     // 6..7 are illegal
		pats[i] = circuits.EncodeSPPattern(fn, cond, r.Uint32(), r.Uint32(), r.Uint32())
	}
	return pats
}

func TestTPGENConversion(t *testing.T) {
	pats := randomSPPatterns(200, 11)
	p, dropped := TPGEN(pats, 11)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Error("expected some unconvertible patterns (illegal encodings)")
	}
	if len(p.SBs) != 200-dropped {
		t.Fatalf("SBs = %d, want %d", len(p.SBs), 200-dropped)
	}
	t.Logf("TPGEN: %d patterns, %d dropped (%.1f%%)", len(pats), dropped,
		100*float64(dropped)/float64(len(pats)))
}

// TestTPGENAppliesPatterns verifies the converted program really applies
// each legal ATPG pattern to the SP datapath: the traced SP pattern stream
// must contain every converted (fn, a, b) tuple.
func TestTPGENAppliesPatterns(t *testing.T) {
	pats := randomSPPatterns(60, 13)
	p, _ := TPGEN(pats, 13)
	col := trace.NewCollector(circuits.ModuleSP)
	runPTP(t, p, col)

	applied := map[[2]uint64]bool{}
	for _, tp := range col.Patterns {
		applied[tp.Pat.W] = true
	}
	for _, want := range pats {
		fnRaw, condRaw, a, b, c := circuits.DecodeSPPattern(want)
		if int(fnRaw) >= circuits.NumSPFns {
			continue
		}
		fn := circuits.SPFn(fnRaw)
		if fn == circuits.SPSet && int(condRaw) >= isa.NumConds {
			continue
		}
		// Reconstruct the pattern as the datapath will see it after
		// conversion (unary ops lose unused operands; non-MAD ops lose c;
		// non-SET ops lose cond).
		var exp circuits.Pattern
		switch fn {
		case circuits.SPMad:
			exp = circuits.EncodeSPPattern(fn, isa.CondEQ, a, b, c)
		case circuits.SPNot:
			exp = circuits.EncodeSPPattern(fn, isa.CondEQ, a, 0, 0)
		case circuits.SPPass:
			exp = circuits.EncodeSPPattern(fn, isa.CondEQ, 0, b, 0)
		case circuits.SPSet:
			exp = circuits.EncodeSPPattern(fn, isa.Cond(condRaw), a, b, 0)
		default:
			exp = circuits.EncodeSPPattern(fn, isa.CondEQ, a, b, 0)
		}
		if !applied[exp.W] {
			t.Fatalf("converted pattern not applied: fn=%d a=%#x b=%#x", fn, a, b)
		}
	}
}

func TestSFUIMMConversion(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	pats := make([]circuits.Pattern, 100)
	for i := range pats {
		pats[i] = circuits.EncodeSFUPattern(circuits.SFUFn(r.Intn(8)), r.Uint32())
	}
	p, dropped := SFUIMM(pats, 17)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Error("expected dropped patterns for fn 6..7")
	}
	col := trace.NewCollector(circuits.ModuleSFU)
	runPTP(t, p, col)

	applied := map[[2]uint64]bool{}
	for _, tp := range col.Patterns {
		applied[tp.Pat.W] = true
	}
	for _, want := range pats {
		fnRaw, _ := circuits.DecodeSFUPattern(want)
		if int(fnRaw) >= circuits.NumSFUFns {
			continue
		}
		if !applied[want.W] {
			t.Fatalf("SFU pattern not applied: %+v", want)
		}
	}
	if f := p.ARCFraction(); f < 0.98 {
		t.Errorf("SFU_IMM ARC fraction = %f", f)
	}
}

func TestProtectedRegionsExcludePrologue(t *testing.T) {
	p := IMM(10, 1)
	arcs := p.ARCs()
	for _, r := range arcs {
		if r.Contains(0) || r.Contains(len(p.Prog)-1) {
			t.Fatalf("prologue/epilogue inside ARC: %+v", r)
		}
	}
	// All SBs must be inside ARCs.
	for _, sb := range p.SBs {
		inside := false
		for _, r := range arcs {
			if sb.Start >= r.Start && sb.End <= r.End {
				inside = true
				break
			}
		}
		if !inside {
			t.Fatalf("SB %+v outside ARCs %+v", sb, arcs)
		}
	}
}

func TestSignatureChainsAcrossSBs(t *testing.T) {
	// Removing the SpT dependence would break the RAND FC discussion; make
	// sure every SB folds into the shared accumulator and stores it.
	p := RAND(12, 21)
	for i, sb := range p.SBs {
		foundFold, foundStore := false, false
		for pc := sb.Start; pc < sb.End; pc++ {
			in := p.Prog[pc]
			if in.Op == isa.OpXOR && in.Rd == regAcc && in.Ra == regAcc {
				foundFold = true
			}
			if in.Op == isa.OpGST && in.Ra == regSig && in.Rb == regAcc {
				foundStore = true
			}
		}
		if !foundFold || !foundStore {
			t.Fatalf("SB %d lacks fold/store (fold=%v store=%v)", i, foundFold, foundStore)
		}
	}
}
