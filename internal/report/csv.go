package report

import (
	"encoding/csv"
	"io"
)

// WriteCSV emits the table as CSV (headers first), for spreadsheet
// post-processing of experiment results.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
