package report

import (
	"bytes"
	"encoding/csv"
	"io"

	"gpustl/internal/journal"
)

// WriteCSV emits the table as CSV (headers first), for spreadsheet
// post-processing of experiment results.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to path durably: temp file, fsync,
// rename, directory fsync. A crash mid-write leaves either the old file
// or the new one, never a torn CSV.
func (t *Table) WriteCSVFile(path string) error {
	var buf bytes.Buffer
	if err := t.WriteCSV(&buf); err != nil {
		return err
	}
	return journal.WriteFileAtomic(path, buf.Bytes())
}
