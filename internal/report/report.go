// Package report renders the experiment results as aligned text tables in
// the style of the paper's Tables I–III.
package report

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	width := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	total := 0
	for _, wd := range width {
		total += wd + 2
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	line := strings.Repeat("-", total)
	fmt.Fprintln(w, line)
	printRow := func(cells []string) {
		for i, c := range cells {
			pad := 0
			if i < len(width) {
				pad = width[i] - len(c)
			}
			fmt.Fprintf(w, "%s%s  ", c, strings.Repeat(" ", pad))
		}
		fmt.Fprintln(w)
	}
	printRow(t.Headers)
	fmt.Fprintln(w, line)
	for _, row := range t.Rows {
		printRow(row)
	}
	fmt.Fprintln(w, line)
}

// Int formats an integer with thousands separators.
func Int(v int) string {
	s := fmt.Sprintf("%d", v)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// Uint formats a uint64 with thousands separators.
func Uint(v uint64) string { return Int(int(v)) }

// Pct formats a percentage with two decimals.
func Pct(v float64) string { return fmt.Sprintf("%.2f", v) }

// SignedPct formats a percentage with an explicit sign, as in the paper's
// compaction and Diff FC columns.
func SignedPct(v float64) string { return fmt.Sprintf("%+.2f", v) }

// Dur formats a duration compactly.
func Dur(d time.Duration) string { return d.Round(time.Millisecond).String() }
