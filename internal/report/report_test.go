package report

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTableRender(t *testing.T) {
	tb := Table{
		Title:   "T",
		Headers: []string{"a", "long-header", "c"},
		Rows:    [][]string{{"1", "2", "3"}, {"wide-cell", "x", "y"}},
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "T" {
		t.Errorf("title line: %q", lines[0])
	}
	if !strings.Contains(out, "long-header") || !strings.Contains(out, "wide-cell") {
		t.Errorf("missing cells:\n%s", out)
	}
	// Columns must be aligned: the header row and data rows share the
	// position of the second column.
	head := lines[2]
	row := lines[5] // second data row (wide-cell)
	hPos := strings.Index(head, "long-header")
	rPos := strings.Index(row, "x")
	if hPos != rPos {
		t.Errorf("column misaligned: header at %d, cell at %d\n%s", hPos, rPos, out)
	}
}

func TestTableAddRow(t *testing.T) {
	tb := Table{Headers: []string{"x"}}
	tb.AddRow("1")
	tb.AddRow("2")
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestIntFormatting(t *testing.T) {
	cases := map[int]string{
		0:        "0",
		5:        "5",
		999:      "999",
		1000:     "1,000",
		1234567:  "1,234,567",
		-1234567: "-1,234,567",
		-12:      "-12",
	}
	for in, want := range cases {
		if got := Int(in); got != want {
			t.Errorf("Int(%d) = %q, want %q", in, got, want)
		}
	}
	if got := Uint(16000000); got != "16,000,000" {
		t.Errorf("Uint = %q", got)
	}
}

func TestPctFormatting(t *testing.T) {
	if Pct(98.642) != "98.64" {
		t.Errorf("Pct = %q", Pct(98.642))
	}
	if SignedPct(-97.301) != "-97.30" {
		t.Errorf("SignedPct = %q", SignedPct(-97.301))
	}
	if SignedPct(0.06) != "+0.06" {
		t.Errorf("SignedPct = %q", SignedPct(0.06))
	}
}

func TestWriteCSV(t *testing.T) {
	tb := Table{
		Headers: []string{"a", "b"},
		Rows:    [][]string{{"1,000", "x"}, {"2", "y\"z"}},
	}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"1,000\",x\n2,\"y\"\"z\"\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestDurFormatting(t *testing.T) {
	if got := Dur(1500 * time.Millisecond); got != "1.5s" {
		t.Errorf("Dur = %q", got)
	}
}
