package run

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"gpustl/internal/circuits"
	"gpustl/internal/core"
	"gpustl/internal/gpu"
	"gpustl/internal/journal"
	"gpustl/internal/stl"
)

// CheckpointVersion is bumped whenever the persisted schema changes
// incompatibly; a version mismatch refuses to resume.
const CheckpointVersion = 2

// WALFile is the append-only write-ahead journal inside the checkpoint
// directory. One fsync'd record per PTP outcome; recovery replays it
// and truncates at the first corrupt or torn record.
const WALFile = "campaign.wal"

// legacyCheckpointFile is the PR-1 whole-state JSON checkpoint. It is
// still read — and migrated into the journal — so campaigns started
// before the journal existed resume without losing work.
const legacyCheckpointFile = "checkpoint.json"

// markEvery is how many outcome records sit between two consecutive
// compaction marks. A mark carries the running totals, so fsck can
// cross-check long journals incrementally and a replay mismatch is
// localized to a 16-record window.
const markEvery = 16

// Journal record types.
const (
	recMeta    = "meta"    // first record: version, config hash, library size
	recOutcome = "outcome" // one per finished PTP, an Entry
	recMark    = "mark"    // periodic compaction mark: running totals
)

// metaRecord is the journal's first record.
type metaRecord struct {
	Version    int    `json:"version"`
	ConfigHash string `json:"configHash"`
	PTPs       int    `json:"ptps"`
}

// markRecord is a periodic compaction mark: totals over every outcome
// record so far.
type markRecord struct {
	Outcomes int `json:"outcomes"`
	OrigSize int `json:"origSize"`
	CompSize int `json:"compSize"`
}

// Entry records the outcome of one PTP, in library order. It carries
// everything a resumed run needs to reconstruct both the report row and
// the campaign state without re-simulating.
type Entry struct {
	Index  int    `json:"index"`
	Name   string `json:"name"`
	Status Status `json:"status"`
	// Stage is the pipeline stage reached when a failure occurred
	// (empty for compacted/excluded entries).
	Stage string `json:"stage,omitempty"`
	Error string `json:"error,omitempty"`
	// Attempts counts pipeline attempts (>1 only when the quarantine
	// policy retried a crashing or timed-out PTP).
	Attempts int `json:"attempts,omitempty"`

	OrigSize        int     `json:"origSize"`
	CompSize        int     `json:"compSize"`
	OrigDuration    uint64  `json:"origDuration,omitempty"`
	CompDuration    uint64  `json:"compDuration,omitempty"`
	OrigFC          float64 `json:"origFC,omitempty"`
	CompFC          float64 `json:"compFC,omitempty"`
	TotalSBs        int     `json:"totalSBs,omitempty"`
	RemovedSBs      int     `json:"removedSBs,omitempty"`
	Essential       int     `json:"essential,omitempty"`
	Unessential     int     `json:"unessential,omitempty"`
	DetectedThisRun int     `json:"detectedThisRun,omitempty"`

	// OrigHash fingerprints the input PTP (sha256 of its serialized
	// form) so resuming against an edited library fails loudly.
	OrigHash string `json:"origHash"`
	// Compacted is the WritePTP serialization of the compacted program;
	// present only when Status is StatusCompacted (reverted, excluded
	// and quarantined PTPs keep the original, which the library holds).
	Compacted json.RawMessage `json:"compacted,omitempty"`
	// DroppedFaults is the delta of the target module's campaign
	// detected-id set contributed by this PTP (ascending). Replaying the
	// deltas in order reconstructs the cross-PTP fault-dropping state.
	DroppedFaults []int32 `json:"droppedFaults,omitempty"`
}

// Checkpoint is the in-memory state of a (possibly partial) STL
// compaction run, as reconstructed from the journal.
type Checkpoint struct {
	Version    int     `json:"version"`
	ConfigHash string  `json:"configHash"`
	Entries    []Entry `json:"entries"`
}

// LoadCheckpoint reads the campaign state persisted in dir: the
// write-ahead journal when present, the legacy checkpoint.json
// otherwise. Missing state is not an error: it returns (nil, nil) so a
// first run starts fresh. A journal with a corrupt tail loads the
// records before the corruption (exactly what a resume would use).
func LoadCheckpoint(dir string) (*Checkpoint, error) {
	walPath := filepath.Join(dir, WALFile)
	rp, err := journal.Scan(walPath)
	if err != nil {
		return nil, fmt.Errorf("run: reading journal: %w", err)
	}
	if len(rp.Records) > 0 {
		ck, _, err := checkpointFromReplay(rp)
		return ck, err
	}
	return loadLegacyCheckpoint(dir)
}

// checkpointFromReplay rebuilds the checkpoint from a journal replay,
// validating the schema (meta first, outcomes in order, marks agreeing
// with the replayed totals). It also returns the running totals so the
// writer can continue the mark sequence.
func checkpointFromReplay(rp *journal.Replay) (*Checkpoint, markRecord, error) {
	var totals markRecord
	if len(rp.Records) == 0 {
		return nil, totals, nil
	}
	first := rp.Records[0]
	if first.Type != recMeta {
		return nil, totals, fmt.Errorf("run: journal %s: first record is %q, want %q; run `stlcompact -fsck` to inspect it, or delete the checkpoint directory to start over",
			rp.Path, first.Type, recMeta)
	}
	var meta metaRecord
	if err := json.Unmarshal(first.Body, &meta); err != nil {
		return nil, totals, fmt.Errorf("run: journal %s: meta record: %v; run `stlcompact -fsck` to inspect it", rp.Path, err)
	}
	if meta.Version != CheckpointVersion {
		return nil, totals, fmt.Errorf("run: journal %s has schema version %d, this binary writes %d; delete the checkpoint directory to start over",
			rp.Path, meta.Version, CheckpointVersion)
	}
	ck := &Checkpoint{Version: meta.Version, ConfigHash: meta.ConfigHash}
	for i, rec := range rp.Records[1:] {
		switch rec.Type {
		case recOutcome:
			var e Entry
			if err := json.Unmarshal(rec.Body, &e); err != nil {
				return nil, totals, fmt.Errorf("run: journal %s: record %d: %v; run `stlcompact -fsck` to inspect it", rp.Path, i+2, err)
			}
			if e.Index != len(ck.Entries) {
				return nil, totals, fmt.Errorf("run: journal %s: record %d holds outcome %d, want %d; run `stlcompact -fsck` to inspect it",
					rp.Path, i+2, e.Index, len(ck.Entries))
			}
			ck.Entries = append(ck.Entries, e)
			totals.Outcomes++
			totals.OrigSize += e.OrigSize
			totals.CompSize += e.CompSize
		case recMark:
			var m markRecord
			if err := json.Unmarshal(rec.Body, &m); err != nil {
				return nil, totals, fmt.Errorf("run: journal %s: record %d: %v", rp.Path, i+2, err)
			}
			if m != totals {
				return nil, totals, fmt.Errorf("run: journal %s: compaction mark %+v disagrees with the replayed outcomes %+v; run `stlcompact -fsck` to inspect it",
					rp.Path, m, totals)
			}
		default:
			return nil, totals, fmt.Errorf("run: journal %s: record %d has unknown type %q", rp.Path, i+2, rec.Type)
		}
	}
	return ck, totals, nil
}

// loadLegacyCheckpoint reads the PR-1 single-file JSON checkpoint. Its
// errors name the file and suggest a way out — a truncated or corrupt
// checkpoint used to surface as a bare JSON error with no path.
func loadLegacyCheckpoint(dir string) (*Checkpoint, error) {
	path := filepath.Join(dir, legacyCheckpointFile)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("run: reading checkpoint %s: %w", path, err)
	}
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("run: checkpoint %s is truncated or corrupt (%v); run `stlcompact -fsck -checkpoint %s` with the campaign's flags to see what is salvageable, or delete the file to start fresh",
			path, err, dir)
	}
	if ck.Version != 1 && ck.Version != CheckpointVersion {
		return nil, fmt.Errorf("run: checkpoint %s has version %d, this binary supports %d; delete the file to start fresh",
			path, ck.Version, CheckpointVersion)
	}
	return &ck, nil
}

// Save writes the checkpoint as the legacy single-file JSON snapshot,
// durably: temp file, fsync(file), rename, fsync(directory). The
// runner itself persists through the journal; Save remains for
// exporting state and for exercising the legacy migration path.
func (ck *Checkpoint) Save(dir string) error {
	data, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return fmt.Errorf("run: encoding checkpoint: %w", err)
	}
	if err := journal.WriteFileAtomic(filepath.Join(dir, legacyCheckpointFile), data); err != nil {
		return fmt.Errorf("run: writing checkpoint: %w", err)
	}
	return nil
}

// campaignLog is the runner's append handle on the write-ahead journal.
type campaignLog struct {
	j      *journal.Journal
	totals markRecord
}

// openCampaign opens (or creates) dir's campaign journal, replays it,
// and validates it against this run's config hash and library size.
// When no journal exists yet, a legacy checkpoint.json (if any) is
// migrated into a fresh journal so pre-journal campaigns keep their
// work. The returned checkpoint holds every salvaged entry; notes
// carries human-readable salvage and migration messages.
func openCampaign(dir, configHash string, nPTPs int) (*campaignLog, *Checkpoint, []string, error) {
	walPath := filepath.Join(dir, WALFile)
	j, rp, err := journal.Open(walPath)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("run: opening journal: %w", err)
	}
	var notes []string
	if rp.Truncated {
		notes = append(notes, fmt.Sprintf(
			"journal %s: salvaged %d record(s) (%d of %d bytes); dropped corrupt tail (%s): %s",
			walPath, len(rp.Records), rp.GoodSize, rp.TotalSize, rp.Kind, rp.Reason))
	}
	fail := func(err error) (*campaignLog, *Checkpoint, []string, error) {
		j.Close()
		return nil, nil, nil, err
	}

	cl := &campaignLog{j: j}
	if len(rp.Records) > 0 {
		ck, totals, err := checkpointFromReplay(rp)
		if err != nil {
			return fail(err)
		}
		cl.totals = totals
		if ck.ConfigHash != configHash {
			return fail(fmt.Errorf("run: journal %s was written by a different configuration (hash %.12s, want %.12s); run `stlcompact -fsck` with the campaign's original flags, or delete %s to start over",
				walPath, ck.ConfigHash, configHash, dir))
		}
		if len(ck.Entries) > nPTPs {
			return fail(fmt.Errorf("run: journal %s has %d outcomes but the library has %d PTPs; delete %s to start over",
				walPath, len(ck.Entries), nPTPs, dir))
		}
		return cl, ck, notes, nil
	}

	// No journal yet: fresh start, or migration from a legacy
	// checkpoint written before the journal existed.
	legacy, err := loadLegacyCheckpoint(dir)
	if err != nil {
		return fail(err)
	}
	if legacy != nil {
		if legacy.ConfigHash != configHash {
			return fail(fmt.Errorf("run: checkpoint was written by a different configuration (hash %.12s, want %.12s); delete %s to start over",
				legacy.ConfigHash, configHash, dir))
		}
		if len(legacy.Entries) > nPTPs {
			return fail(fmt.Errorf("run: checkpoint has %d entries but the library has %d PTPs", len(legacy.Entries), nPTPs))
		}
	}
	if _, err := cl.j.Append(recMeta, metaRecord{Version: CheckpointVersion, ConfigHash: configHash, PTPs: nPTPs}); err != nil {
		return fail(fmt.Errorf("run: journaling campaign meta: %w", err))
	}
	ck := &Checkpoint{Version: CheckpointVersion, ConfigHash: configHash}
	if legacy != nil {
		notes = append(notes, fmt.Sprintf("migrated legacy %s (%d entries) into %s",
			legacyCheckpointFile, len(legacy.Entries), WALFile))
		for _, e := range legacy.Entries {
			if err := cl.appendOutcome(e); err != nil {
				return fail(err)
			}
		}
		ck.Entries = legacy.Entries
	}
	return cl, ck, notes, nil
}

// appendOutcome journals one finished PTP (fsync'd before returning)
// and emits a compaction mark every markEvery outcomes.
func (cl *campaignLog) appendOutcome(e Entry) error {
	if _, err := cl.j.Append(recOutcome, e); err != nil {
		return fmt.Errorf("run: journaling outcome %d (%s): %w", e.Index, e.Name, err)
	}
	cl.totals.Outcomes++
	cl.totals.OrigSize += e.OrigSize
	cl.totals.CompSize += e.CompSize
	if cl.totals.Outcomes%markEvery == 0 {
		if _, err := cl.j.Append(recMark, cl.totals); err != nil {
			return fmt.Errorf("run: journaling compaction mark: %w", err)
		}
	}
	return nil
}

// Close closes the underlying journal.
func (cl *campaignLog) Close() error { return cl.j.Close() }

// HashPTP fingerprints a PTP through its serialized form.
func HashPTP(p *stl.PTP) (string, error) {
	var buf bytes.Buffer
	if err := stl.WritePTP(&buf, p); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// ConfigHash fingerprints everything that determines a run's results:
// the GPU configuration, the per-module fault lists, the library's PTPs,
// and the deterministic compactor options. Workers and Simulator are
// excluded — the fault simulation is bit-identical at any worker count
// and over any (contract-honoring) simulation engine, so a resume may
// use a different parallelism, or distributed workers instead of the
// in-process engine, than the original run. Retry/quarantine knobs are
// excluded for the same reason: they change what happens on a crash,
// not what a successful compaction computes.
func ConfigHash(cfg gpu.Config, ms *core.ModuleSet, lib *stl.STL, opt core.Options) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "gpu:%+v\n", cfg)

	kinds := make([]circuits.ModuleKind, 0, len(ms.Modules))
	for k := range ms.Modules {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		m := ms.Modules[k]
		fmt.Fprintf(h, "module:%v gates:%d lanes:%d faults:%d\n",
			k, m.NL.NumGates(), m.Lanes, len(ms.Faults[k]))
		for _, f := range ms.Faults[k] {
			fmt.Fprintf(h, "f:%d.%d.%d.%v\n", f.Lane, f.Site.Gate, f.Site.Pin, f.Site.SA1)
		}
	}

	for _, p := range lib.PTPs {
		ph, err := HashPTP(p)
		if err != nil {
			return "", fmt.Errorf("run: hashing PTP %s: %w", p.Name, err)
		}
		fmt.Fprintf(h, "ptp:%s:%s\n", p.Name, ph)
	}

	fmt.Fprintf(h, "opt:reverse=%v instr=%v keep=%v obsfc=%v\n",
		opt.ReversePatterns, opt.InstructionGranularity, opt.KeepCampaign, opt.ObservableFC)
	return hex.EncodeToString(h.Sum(nil)), nil
}
