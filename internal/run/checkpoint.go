package run

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"gpustl/internal/circuits"
	"gpustl/internal/core"
	"gpustl/internal/gpu"
	"gpustl/internal/stl"
)

// CheckpointVersion is bumped whenever the on-disk schema changes
// incompatibly; a version mismatch refuses to resume.
const CheckpointVersion = 1

// checkpointFile is the file name inside the checkpoint directory.
const checkpointFile = "checkpoint.json"

// Entry records the outcome of one PTP, in library order. It carries
// everything a resumed run needs to reconstruct both the report row and
// the campaign state without re-simulating.
type Entry struct {
	Index  int    `json:"index"`
	Name   string `json:"name"`
	Status Status `json:"status"`
	// Stage is the pipeline stage reached when a failure occurred
	// (empty for compacted/excluded entries).
	Stage string `json:"stage,omitempty"`
	Error string `json:"error,omitempty"`

	OrigSize        int     `json:"origSize"`
	CompSize        int     `json:"compSize"`
	OrigDuration    uint64  `json:"origDuration,omitempty"`
	CompDuration    uint64  `json:"compDuration,omitempty"`
	OrigFC          float64 `json:"origFC,omitempty"`
	CompFC          float64 `json:"compFC,omitempty"`
	TotalSBs        int     `json:"totalSBs,omitempty"`
	RemovedSBs      int     `json:"removedSBs,omitempty"`
	Essential       int     `json:"essential,omitempty"`
	Unessential     int     `json:"unessential,omitempty"`
	DetectedThisRun int     `json:"detectedThisRun,omitempty"`

	// OrigHash fingerprints the input PTP (sha256 of its serialized
	// form) so resuming against an edited library fails loudly.
	OrigHash string `json:"origHash"`
	// Compacted is the WritePTP serialization of the compacted program;
	// present only when Status is StatusCompacted (reverted and excluded
	// PTPs keep the original, which the library still holds).
	Compacted json.RawMessage `json:"compacted,omitempty"`
	// DroppedFaults is the delta of the target module's campaign
	// detected-id set contributed by this PTP (ascending). Replaying the
	// deltas in order reconstructs the cross-PTP fault-dropping state.
	DroppedFaults []int32 `json:"droppedFaults,omitempty"`
}

// Checkpoint is the persisted state of a (possibly partial) STL
// compaction run.
type Checkpoint struct {
	Version    int     `json:"version"`
	ConfigHash string  `json:"configHash"`
	Entries    []Entry `json:"entries"`
}

// LoadCheckpoint reads dir/checkpoint.json. A missing file is not an
// error: it returns (nil, nil) so a first run starts fresh.
func LoadCheckpoint(dir string) (*Checkpoint, error) {
	data, err := os.ReadFile(filepath.Join(dir, checkpointFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("run: reading checkpoint: %w", err)
	}
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("run: parsing checkpoint: %w", err)
	}
	if ck.Version != CheckpointVersion {
		return nil, fmt.Errorf("run: checkpoint version %d, want %d",
			ck.Version, CheckpointVersion)
	}
	return &ck, nil
}

// Save writes the checkpoint atomically (temp file + rename), so a crash
// mid-write leaves the previous checkpoint intact.
func (ck *Checkpoint) Save(dir string) error {
	data, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return fmt.Errorf("run: encoding checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(dir, checkpointFile+".tmp*")
	if err != nil {
		return fmt.Errorf("run: writing checkpoint: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("run: writing checkpoint: %w", werr)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, checkpointFile)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("run: committing checkpoint: %w", err)
	}
	return nil
}

// HashPTP fingerprints a PTP through its serialized form.
func HashPTP(p *stl.PTP) (string, error) {
	var buf bytes.Buffer
	if err := stl.WritePTP(&buf, p); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// ConfigHash fingerprints everything that determines a run's results:
// the GPU configuration, the per-module fault lists, the library's PTPs,
// and the deterministic compactor options. Workers and Simulator are
// excluded — the fault simulation is bit-identical at any worker count
// and over any (contract-honoring) simulation engine, so a resume may
// use a different parallelism, or distributed workers instead of the
// in-process engine, than the original run.
func ConfigHash(cfg gpu.Config, ms *core.ModuleSet, lib *stl.STL, opt core.Options) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "gpu:%+v\n", cfg)

	kinds := make([]circuits.ModuleKind, 0, len(ms.Modules))
	for k := range ms.Modules {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		m := ms.Modules[k]
		fmt.Fprintf(h, "module:%v gates:%d lanes:%d faults:%d\n",
			k, m.NL.NumGates(), m.Lanes, len(ms.Faults[k]))
		for _, f := range ms.Faults[k] {
			fmt.Fprintf(h, "f:%d.%d.%d.%v\n", f.Lane, f.Site.Gate, f.Site.Pin, f.Site.SA1)
		}
	}

	for _, p := range lib.PTPs {
		ph, err := HashPTP(p)
		if err != nil {
			return "", fmt.Errorf("run: hashing PTP %s: %w", p.Name, err)
		}
		fmt.Fprintf(h, "ptp:%s:%s\n", p.Name, ph)
	}

	fmt.Fprintf(h, "opt:reverse=%v instr=%v keep=%v obsfc=%v\n",
		opt.ReversePatterns, opt.InstructionGranularity, opt.KeepCampaign, opt.ObservableFC)
	return hex.EncodeToString(h.Sum(nil)), nil
}
