// Package run is the resilience layer over the compaction pipeline: it
// compacts a whole STL with per-PTP panic isolation, per-stage watchdog
// timeouts, cooperative cancellation, a checksummed write-ahead journal
// for checkpoint/resume, a poison-PTP quarantine policy, and an
// FC-safety guard that keeps the original PTP whenever compaction fails
// or costs fault coverage. The paper's method (package core) stays
// pure; everything operational lives here.
package run

import (
	"errors"
	"fmt"

	"gpustl/internal/core"
)

// FailKind classifies how a pipeline stage failed. The distinction
// drives the quarantine policy: crash-class failures (panics and
// watchdog timeouts) are retried and then quarantined, while
// deterministic stage errors revert immediately — re-running those
// would fail identically.
type FailKind string

const (
	// FailError: the stage returned an ordinary error.
	FailError FailKind = "error"
	// FailPanic: the stage panicked (recovered by the runner).
	FailPanic FailKind = "panic"
	// FailTimeout: the per-stage watchdog canceled a stalled stage.
	FailTimeout FailKind = "timeout"
	// FailOverload: the stage was shed by overload protection (admission
	// control refused a campaign, a retry budget ran dry). The PTP itself
	// is healthy — the cluster's state caused the failure — so this kind
	// is retried like a crash, but exhausting retries aborts the campaign
	// instead of quarantining: a resume retries the PTP once load eases.
	FailOverload FailKind = "overload"
)

// StageError attributes a compaction failure to the pipeline stage that
// was executing when it happened.
type StageError struct {
	Stage core.Stage
	PTP   string
	Kind  FailKind
	Err   error
}

// Error renders "run: PTP <name> failed at stage <stage>: <cause>".
func (e *StageError) Error() string {
	return fmt.Sprintf("run: PTP %s failed at stage %s: %v", e.PTP, e.Stage, e.Err)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *StageError) Unwrap() error { return e.Err }

// failKindOf extracts err's FailKind (FailError when err carries no
// StageError).
func failKindOf(err error) FailKind {
	var se *StageError
	if errors.As(err, &se) {
		return se.Kind
	}
	return FailError
}

// Retryable reports whether the failure is a crash-class or
// overload-class event that the quarantine policy may retry. Ordinary
// stage errors are deterministic and are not retried.
func (e *StageError) Retryable() bool {
	return e.Kind == FailPanic || e.Kind == FailTimeout || e.Kind == FailOverload
}
