// Package run is the resilience layer over the compaction pipeline: it
// compacts a whole STL with per-PTP panic isolation, per-stage watchdog
// timeouts, cooperative cancellation, JSON checkpoint/resume, and an
// FC-safety guard that keeps the original PTP whenever compaction fails
// or costs fault coverage. The paper's method (package core) stays pure;
// everything operational lives here.
package run

import (
	"fmt"

	"gpustl/internal/core"
)

// StageError attributes a compaction failure to the pipeline stage that
// was executing when it happened.
type StageError struct {
	Stage core.Stage
	PTP   string
	Err   error
}

// Error renders "run: PTP <name> failed at stage <stage>: <cause>".
func (e *StageError) Error() string {
	return fmt.Sprintf("run: PTP %s failed at stage %s: %v", e.PTP, e.Stage, e.Err)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *StageError) Unwrap() error { return e.Err }
