package run

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"gpustl/internal/journal"
	"gpustl/internal/stl"
)

// FsckKind classifies one integrity finding. Each kind has a distinct
// diagnostic so operators can tell apart a torn write (expected after a
// crash, self-healing on resume) from silent corruption or operator
// error (wrong flags, edited library).
type FsckKind string

const (
	// FsckTornTail: the journal ends in a partial record — the normal
	// signature of a crash mid-append. Resume drops the tail.
	FsckTornTail FsckKind = "torn-tail"
	// FsckCRC: a record's CRC32C does not match its payload — the
	// record was altered or the disk corrupted it.
	FsckCRC FsckKind = "crc-mismatch"
	// FsckSeq: a record's sequence number breaks the monotonic chain —
	// records were reordered, duplicated, or spliced.
	FsckSeq FsckKind = "sequence-break"
	// FsckSchema: a record passes the CRC but its payload does not
	// decode as the schema its type promises.
	FsckSchema FsckKind = "schema"
	// FsckConfigHash: the journal was written under a different
	// configuration than the one being checked — resuming would mix
	// incompatible campaign states.
	FsckConfigHash FsckKind = "config-hash-mismatch"
	// FsckPTPDrift: a journaled outcome's input-PTP hash does not match
	// the library's PTP at the same index — the library was edited
	// after the campaign started.
	FsckPTPDrift FsckKind = "ptp-hash-drift"
	// FsckMark: a compaction mark disagrees with the outcomes replayed
	// before it — some outcome record was altered without tripping its
	// own CRC window.
	FsckMark FsckKind = "mark-mismatch"
	// FsckArtifact: an output artifact fails its checksum sidecar, or
	// has no sidecar to check.
	FsckArtifact FsckKind = "artifact-checksum"
)

// FsckIssue is one integrity finding.
type FsckIssue struct {
	Kind   FsckKind
	Detail string
}

// FsckReport summarizes a campaign-state integrity check.
type FsckReport struct {
	JournalPath string
	// Legacy is true when no journal exists and the legacy
	// checkpoint.json was checked instead.
	Legacy bool
	// Records is how many intact journal records were read.
	Records int
	// Salvageable is how many PTP outcomes a resume would recover.
	Salvageable int
	Issues      []FsckIssue
}

// Clean reports whether no integrity issue was found.
func (r *FsckReport) Clean() bool { return len(r.Issues) == 0 }

func (r *FsckReport) add(kind FsckKind, format string, args ...any) {
	r.Issues = append(r.Issues, FsckIssue{Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// Render writes the check's findings and the repair summary: what a
// resume would salvage and what must be deleted or re-run.
func (r *FsckReport) Render(w io.Writer) {
	what := r.JournalPath
	if r.Legacy {
		what += " (legacy checkpoint)"
	}
	fmt.Fprintf(w, "fsck: %s: %d record(s), %d outcome(s) salvageable\n", what, r.Records, r.Salvageable)
	for _, is := range r.Issues {
		fmt.Fprintf(w, "  [%s] %s\n", is.Kind, is.Detail)
	}
	switch {
	case r.Clean():
		fmt.Fprintf(w, "fsck: clean\n")
	case r.Salvageable > 0:
		fmt.Fprintf(w, "fsck: %d issue(s); a resume salvages the first %d outcome(s) and redoes the rest\n",
			len(r.Issues), r.Salvageable)
	default:
		fmt.Fprintf(w, "fsck: %d issue(s); nothing salvageable — delete the checkpoint directory to start over\n",
			len(r.Issues))
	}
}

// Fsck verifies the durable campaign state in dir and any output
// artifacts, without modifying anything:
//
//   - the journal's record envelopes (CRC32C, sequence chain, torn tail),
//   - the record schema (meta first, outcomes in order, marks agreeing
//     with the replayed totals),
//   - the campaign's config hash against wantHash (skipped when empty),
//   - each outcome's input-PTP hash against lib (skipped when nil),
//   - each artifact path's checksum sidecar.
//
// Every finding carries a distinct FsckKind; the caller maps a non-clean
// report to a non-zero exit.
func Fsck(dir, wantHash string, lib *stl.STL, artifacts []string) (*FsckReport, error) {
	walPath := filepath.Join(dir, WALFile)
	rep := &FsckReport{JournalPath: walPath}

	rp, err := journal.Scan(walPath)
	if err != nil {
		return nil, fmt.Errorf("fsck: reading journal: %w", err)
	}
	if rp.TotalSize == 0 && len(rp.Records) == 0 {
		if _, err := os.Stat(walPath); os.IsNotExist(err) {
			return fsckLegacy(dir, wantHash, lib, artifacts, rep)
		}
	}
	rep.Records = len(rp.Records)
	if rp.Truncated {
		kind := FsckTornTail
		switch rp.Kind {
		case journal.CorruptCRC:
			kind = FsckCRC
		case journal.CorruptSeq:
			kind = FsckSeq
		}
		rep.add(kind, "journal tail dropped after %d good byte(s) of %d: %s",
			rp.GoodSize, rp.TotalSize, rp.Reason)
	}

	ck := fsckRecords(rp, rep)
	if ck != nil {
		rep.Salvageable = len(ck.Entries)
		fsckCheckpoint(ck, wantHash, lib, rep)
	}
	fsckArtifacts(artifacts, rep)
	return rep, nil
}

// fsckRecords validates the journal's record schema, collecting issues
// instead of stopping at the first, and returns the salvageable
// checkpoint (nil when even the meta record is unusable).
func fsckRecords(rp *journal.Replay, rep *FsckReport) *Checkpoint {
	if len(rp.Records) == 0 {
		return nil
	}
	first := rp.Records[0]
	if first.Type != recMeta {
		rep.add(FsckSchema, "first record is %q, want %q", first.Type, recMeta)
		return nil
	}
	var meta metaRecord
	if err := json.Unmarshal(first.Body, &meta); err != nil {
		rep.add(FsckSchema, "meta record does not decode: %v", err)
		return nil
	}
	if meta.Version != CheckpointVersion {
		rep.add(FsckSchema, "journal schema version %d, this binary reads %d", meta.Version, CheckpointVersion)
		return nil
	}
	ck := &Checkpoint{Version: meta.Version, ConfigHash: meta.ConfigHash}
	var totals markRecord
	for i, rec := range rp.Records[1:] {
		switch rec.Type {
		case recOutcome:
			var e Entry
			if err := json.Unmarshal(rec.Body, &e); err != nil {
				rep.add(FsckSchema, "record %d (seq %d) does not decode as an outcome: %v", i+2, rec.Seq, err)
				return ck
			}
			if e.Index != len(ck.Entries) {
				rep.add(FsckSchema, "record %d holds outcome %d, want %d", i+2, e.Index, len(ck.Entries))
				return ck
			}
			ck.Entries = append(ck.Entries, e)
			totals.Outcomes++
			totals.OrigSize += e.OrigSize
			totals.CompSize += e.CompSize
		case recMark:
			var m markRecord
			if err := json.Unmarshal(rec.Body, &m); err != nil {
				rep.add(FsckSchema, "record %d does not decode as a mark: %v", i+2, err)
				return ck
			}
			if m != totals {
				rep.add(FsckMark, "mark at record %d says %d outcomes (orig %d, comp %d) but the replay holds %d (orig %d, comp %d)",
					i+2, m.Outcomes, m.OrigSize, m.CompSize, totals.Outcomes, totals.OrigSize, totals.CompSize)
			}
		default:
			rep.add(FsckSchema, "record %d has unknown type %q", i+2, rec.Type)
		}
	}
	return ck
}

// fsckCheckpoint cross-checks a salvaged checkpoint against this run's
// configuration and library.
func fsckCheckpoint(ck *Checkpoint, wantHash string, lib *stl.STL, rep *FsckReport) {
	if wantHash != "" && ck.ConfigHash != wantHash {
		rep.add(FsckConfigHash, "campaign was written under config %.12s, these flags hash to %.12s — resuming would mix incompatible states",
			ck.ConfigHash, wantHash)
	}
	if lib == nil {
		return
	}
	for i, e := range ck.Entries {
		if i >= len(lib.PTPs) {
			rep.add(FsckPTPDrift, "outcome %d (%s) has no PTP at that index in the library (%d PTPs)",
				i, e.Name, len(lib.PTPs))
			continue
		}
		p := lib.PTPs[i]
		ph, err := HashPTP(p)
		if err != nil {
			rep.add(FsckPTPDrift, "hashing library PTP %s: %v", p.Name, err)
			continue
		}
		if e.Name != p.Name || e.OrigHash != ph {
			rep.add(FsckPTPDrift, "outcome %d was computed from PTP %s (hash %.12s) but the library holds %s (hash %.12s) — the library changed after the campaign started",
				i, e.Name, e.OrigHash, p.Name, ph)
		}
	}
}

// fsckArtifacts verifies each artifact path against its checksum
// sidecar.
func fsckArtifacts(paths []string, rep *FsckReport) {
	for _, path := range paths {
		switch err := journal.VerifyFileSum(path); {
		case err == nil:
		case errors.Is(err, journal.ErrNoSum):
			rep.add(FsckArtifact, "%s has no checksum sidecar (%s); rewrite it with this binary to get one",
				path, journal.SumPath(path))
		default:
			rep.add(FsckArtifact, "%v", err)
		}
	}
}

// fsckLegacy checks the pre-journal checkpoint.json when no journal
// exists yet.
func fsckLegacy(dir, wantHash string, lib *stl.STL, artifacts []string, rep *FsckReport) (*FsckReport, error) {
	path := filepath.Join(dir, legacyCheckpointFile)
	rep.JournalPath = path
	rep.Legacy = true
	ck, err := loadLegacyCheckpoint(dir)
	if err != nil {
		rep.add(FsckSchema, "%v", err)
		fsckArtifacts(artifacts, rep)
		return rep, nil
	}
	if ck != nil {
		rep.Records = 1
		rep.Salvageable = len(ck.Entries)
		fsckCheckpoint(ck, wantHash, lib, rep)
	}
	fsckArtifacts(artifacts, rep)
	return rep, nil
}
