package run

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpustl/internal/core"
	"gpustl/internal/gpu"
	"gpustl/internal/journal"
	"gpustl/internal/ptpgen"
	"gpustl/internal/stl"
)

// fsckCampaign runs a full checkpointed campaign and returns its
// directory, library, and config hash.
func fsckCampaign(t *testing.T) (dir string, lib *stl.STL, hash string) {
	t.Helper()
	dir = t.TempDir()
	lib, ms := testEnv(t)
	cfg := gpu.DefaultConfig()
	copt := core.Options{Workers: 4}
	if _, err := Run(context.Background(), cfg, ms, lib, copt,
		Options{CheckpointDir: dir, FCTolerance: 5}); err != nil {
		t.Fatal(err)
	}
	h, err := ConfigHash(cfg, ms, lib, copt)
	if err != nil {
		t.Fatal(err)
	}
	return dir, lib, h
}

func issueKinds(rep *FsckReport) []FsckKind {
	kinds := make([]FsckKind, len(rep.Issues))
	for i, is := range rep.Issues {
		kinds[i] = is.Kind
	}
	return kinds
}

func TestFsckCleanCampaign(t *testing.T) {
	dir, lib, hash := fsckCampaign(t)
	rep, err := Fsck(dir, hash, lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean campaign flagged: %+v", rep.Issues)
	}
	if rep.Salvageable != len(lib.PTPs) {
		t.Errorf("Salvageable = %d, want %d", rep.Salvageable, len(lib.PTPs))
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	if !strings.Contains(buf.String(), "fsck: clean") {
		t.Errorf("render: %q", buf.String())
	}
}

func TestFsckDetectsCRCMismatch(t *testing.T) {
	dir, lib, hash := fsckCampaign(t)
	walPath := filepath.Join(dir, WALFile)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.LastIndex(data, []byte(`"name":"DIVG"`))
	data[i+len(`"name":"`)] = 'X'
	if err := os.WriteFile(walPath, data, 0o666); err != nil {
		t.Fatal(err)
	}

	rep, err := Fsck(dir, hash, lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("flipped byte not detected")
	}
	if rep.Issues[0].Kind != FsckCRC || !strings.Contains(rep.Issues[0].Detail, "CRC32C mismatch") {
		t.Fatalf("issue: %+v", rep.Issues[0])
	}
	if rep.Salvageable != 2 {
		t.Errorf("Salvageable = %d, want 2", rep.Salvageable)
	}
}

func TestFsckDetectsTornTail(t *testing.T) {
	dir, lib, hash := fsckCampaign(t)
	walPath := filepath.Join(dir, WALFile)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-10], 0o666); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(dir, hash, lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Issues) != 1 || rep.Issues[0].Kind != FsckTornTail {
		t.Fatalf("issues: %v", issueKinds(rep))
	}
}

func TestFsckDetectsConfigHashMismatch(t *testing.T) {
	dir, lib, _ := fsckCampaign(t)
	rep, err := Fsck(dir, strings.Repeat("0", 64), lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Issues) != 1 || rep.Issues[0].Kind != FsckConfigHash {
		t.Fatalf("issues: %v", issueKinds(rep))
	}
	if !strings.Contains(rep.Issues[0].Detail, "incompatible") {
		t.Errorf("detail: %q", rep.Issues[0].Detail)
	}
}

func TestFsckDetectsPTPHashDrift(t *testing.T) {
	dir, _, hash := fsckCampaign(t)
	// The operator edited the library after the campaign: same names,
	// different programs.
	drifted := &stl.STL{PTPs: []*stl.PTP{
		ptpgen.IMM(21, 61), // one extra pattern: hash drifts
		ptpgen.MEM(20, 62),
		ptpgen.DIVG(3, 2, 63),
	}}
	rep, err := Fsck(dir, hash, drifted, nil)
	if err != nil {
		t.Fatal(err)
	}
	var drift int
	for _, is := range rep.Issues {
		if is.Kind == FsckPTPDrift {
			drift++
			if !strings.Contains(is.Detail, "library changed") {
				t.Errorf("detail: %q", is.Detail)
			}
		}
	}
	if drift != 1 {
		t.Fatalf("PTP drift issues = %d, want 1: %v", drift, issueKinds(rep))
	}
}

func TestFsckDetectsArtifactCorruption(t *testing.T) {
	dir, lib, hash := fsckCampaign(t)
	art := filepath.Join(t.TempDir(), "out.stl")
	if err := journal.WriteFileAtomic(art, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := journal.WriteSum(art, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	missing := filepath.Join(filepath.Dir(art), "nosum.stl")
	if err := os.WriteFile(missing, []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}

	// Intact artifact: clean.
	rep, err := Fsck(dir, hash, lib, []string{art})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("intact artifact flagged: %+v", rep.Issues)
	}

	// Corrupted artifact and a sidecar-less one: one issue each, with
	// distinct diagnostics.
	if err := os.WriteFile(art, []byte("PAYLOAD"), 0o666); err != nil {
		t.Fatal(err)
	}
	rep, err = Fsck(dir, hash, lib, []string{art, missing})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Issues) != 2 ||
		rep.Issues[0].Kind != FsckArtifact || rep.Issues[1].Kind != FsckArtifact {
		t.Fatalf("issues: %+v", rep.Issues)
	}
	if !strings.Contains(rep.Issues[0].Detail, "corrupted") {
		t.Errorf("corruption detail: %q", rep.Issues[0].Detail)
	}
	if !strings.Contains(rep.Issues[1].Detail, "no checksum sidecar") {
		t.Errorf("missing-sidecar detail: %q", rep.Issues[1].Detail)
	}
}

func TestFsckDistinctDiagnosticsRender(t *testing.T) {
	// Each kind renders with its own tag so operators (and scripts) can
	// tell the failure classes apart.
	rep := &FsckReport{JournalPath: "x/campaign.wal"}
	rep.add(FsckCRC, "a")
	rep.add(FsckConfigHash, "b")
	rep.add(FsckPTPDrift, "c")
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	for _, tag := range []string{"[crc-mismatch]", "[config-hash-mismatch]", "[ptp-hash-drift]"} {
		if !strings.Contains(out, tag) {
			t.Errorf("render lacks %s:\n%s", tag, out)
		}
	}
}

func TestFsckLegacyCheckpoint(t *testing.T) {
	// A directory holding only a legacy checkpoint.json is checked
	// through the migration reader.
	dir := t.TempDir()
	ck := &Checkpoint{Version: 1, ConfigHash: "abc"}
	if err := ck.Save(dir); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(dir, "abc", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Legacy || !rep.Clean() {
		t.Fatalf("legacy=%v issues=%+v", rep.Legacy, rep.Issues)
	}
	rep, err = Fsck(dir, "other", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Issues) != 1 || rep.Issues[0].Kind != FsckConfigHash {
		t.Fatalf("issues: %v", issueKinds(rep))
	}
}
