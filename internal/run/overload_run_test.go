package run

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gpustl/internal/core"
	"gpustl/internal/fault"
	"gpustl/internal/gpu"
	"gpustl/internal/journal"
	"gpustl/internal/obs"
	"gpustl/internal/overload"
)

// TestRunShedLeavesNoArtifact pins down the admission contract at the
// run layer: a shed campaign fails fast with ErrOverloaded and leaves
// no checkpoint directory, journal, or partial report behind.
func TestRunShedLeavesNoArtifact(t *testing.T) {
	lib, ms := testEnv(t)
	pool := overload.NewAdmission(overload.AdmissionOptions{Capacity: 1, MaxQueue: 0})
	hold, ok := pool.TryAcquire(1)
	if !ok {
		t.Fatal("could not pre-occupy the pool")
	}
	ckDir := filepath.Join(t.TempDir(), "ck")
	rep, err := Run(context.Background(), gpu.DefaultConfig(), ms, lib,
		core.Options{Workers: 2}, Options{CheckpointDir: ckDir, Admission: pool})
	if !errors.Is(err, overload.ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if !journal.IsTransient(err) {
		t.Fatalf("shed must classify as transient: %v", err)
	}
	if rep != nil {
		t.Fatalf("shed run returned a report: %+v", rep)
	}
	if _, serr := os.Stat(ckDir); !os.IsNotExist(serr) {
		t.Fatalf("shed run left an artifact at %s (stat err %v)", ckDir, serr)
	}

	// Freed pool: the identical Run is admitted and completes.
	hold()
	lib2, ms2 := testEnv(t)
	rep, err = Run(context.Background(), gpu.DefaultConfig(), ms2, lib2,
		core.Options{Workers: 2}, Options{CheckpointDir: ckDir, Admission: pool})
	if err != nil {
		t.Fatalf("admitted run failed: %v", err)
	}
	if len(rep.Outcomes) != 3 {
		t.Fatalf("outcomes: %d", len(rep.Outcomes))
	}
}

// TestRunDeadlineBehavesLikeCancel pins down Options.Deadline: an
// already-hopeless deadline stops the run exactly like a canceled
// context — finished PTPs journaled, nothing quarantined — and a
// deadline-free resume completes the rest.
func TestRunDeadlineBehavesLikeCancel(t *testing.T) {
	cfg := gpu.DefaultConfig()
	ckDir := t.TempDir()
	lib, ms := testEnv(t)
	_, err := Run(context.Background(), cfg, ms, lib, core.Options{Workers: 2},
		Options{CheckpointDir: ckDir, Deadline: time.Nanosecond})
	if err == nil {
		t.Fatal("nanosecond deadline cannot complete three PTPs")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded in chain, got %v", err)
	}
	if !journal.IsTransient(err) {
		t.Fatalf("deadline must classify as transient: %v", err)
	}

	lib2, ms2 := testEnv(t)
	rep, err := Run(context.Background(), cfg, ms2, lib2, core.Options{Workers: 2},
		Options{CheckpointDir: ckDir})
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if len(rep.Outcomes) != 3 || rep.Quarantined != 0 {
		t.Fatalf("resume outcomes %d, quarantined %d", len(rep.Outcomes), rep.Quarantined)
	}

	// The deadline-free rendering matches an uninterrupted run's.
	lib3, ms3 := testEnv(t)
	straight, err := Run(context.Background(), cfg, ms3, lib3, core.Options{Workers: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if render(t, rep) != render(t, straight) {
		t.Fatal("resumed render differs from uninterrupted render")
	}
}

// overloadedSim is a FaultSimulator that sheds every simulation with
// ErrOverloaded, as a saturated distributed coordinator would.
type overloadedSim struct{}

func (overloadedSim) SimulateCampaign(ctx context.Context, camp *fault.Campaign,
	stream []fault.TimedPattern, opt fault.SimOptions) (*fault.Report, error) {
	return nil, fmt.Errorf("dist: campaign run shed by admission control: %w", overload.ErrOverloaded)
}

// TestOverloadAbortsWithoutQuarantine pins down the FailOverload
// policy: when overload protection sheds a PTP's simulations past its
// retries, the campaign aborts — transient, resumable — instead of
// journaling a quarantine that would poison a healthy PTP.
func TestOverloadAbortsWithoutQuarantine(t *testing.T) {
	lib, ms := testEnv(t)
	reg := obs.NewRegistry()
	ckDir := t.TempDir()
	rep, err := Run(context.Background(), gpu.DefaultConfig(), ms, lib,
		core.Options{Workers: 2, Simulator: overloadedSim{}},
		Options{CheckpointDir: ckDir, MaxPTPRetries: 2, Metrics: reg})
	if err == nil {
		t.Fatal("overloaded simulator must abort the campaign")
	}
	if !errors.Is(err, overload.ErrOverloaded) {
		t.Fatalf("want ErrOverloaded in chain, got %v", err)
	}
	if !strings.Contains(err.Error(), "resume retries it") {
		t.Fatalf("error does not promise a resumable retry: %v", err)
	}
	if !journal.IsTransient(err) {
		t.Fatalf("overload abort must classify as transient: %v", err)
	}
	if rep.Quarantined != 0 {
		t.Fatalf("overload journaled a quarantine: %+v", rep)
	}
	for _, o := range rep.Outcomes {
		if o.Status == StatusQuarantined {
			t.Fatalf("quarantined outcome under overload: %+v", o)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["gpustl_run_overload_aborts_total"] != 1 {
		t.Fatalf("abort counter = %d, want 1", snap.Counters["gpustl_run_overload_aborts_total"])
	}
	if snap.Counters["gpustl_run_quarantined_total"] != 0 {
		t.Fatal("quarantine counter moved under overload")
	}

	// The journal holds no record of the shed PTP: a healthy resume
	// redoes it from scratch and completes the whole library.
	lib2, ms2 := testEnv(t)
	rep2, err := Run(context.Background(), gpu.DefaultConfig(), ms2, lib2,
		core.Options{Workers: 2}, Options{CheckpointDir: ckDir})
	if err != nil {
		t.Fatalf("resume after overload failed: %v", err)
	}
	if len(rep2.Outcomes) != 3 || rep2.Quarantined != 0 {
		t.Fatalf("resume outcomes %d, quarantined %d", len(rep2.Outcomes), rep2.Quarantined)
	}
}

// TestFailKindOf covers the classification helper.
func TestFailKindOf(t *testing.T) {
	if k := failKindOf(errors.New("plain")); k != FailError {
		t.Fatalf("plain error → %v", k)
	}
	se := &StageError{Kind: FailOverload, Err: overload.ErrOverloaded}
	if k := failKindOf(fmt.Errorf("wrap: %w", se)); k != FailOverload {
		t.Fatalf("wrapped stage error → %v", k)
	}
	if !se.Retryable() {
		t.Fatal("FailOverload must be retryable")
	}
}
