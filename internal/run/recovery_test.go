package run

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpustl/internal/core"
	"gpustl/internal/gpu"
	"gpustl/internal/journal"
)

// referenceRun computes the uninterrupted run every recovery test
// compares against.
func referenceRun(t *testing.T) (*Report, string) {
	t.Helper()
	lib, ms := testEnv(t)
	ref, err := Run(context.Background(), gpu.DefaultConfig(), ms, lib,
		core.Options{Workers: 4}, Options{FCTolerance: 5})
	if err != nil {
		t.Fatal(err)
	}
	return ref, render(t, ref)
}

// assertSameResult checks a recovered run against the reference: the
// rendered report is byte-identical and the output STL agrees PTP for
// PTP (by content hash).
func assertSameResult(t *testing.T, ref, got *Report, want string) {
	t.Helper()
	if g := render(t, got); g != want {
		t.Errorf("recovered report differs:\n--- uninterrupted\n%s--- recovered\n%s", want, g)
	}
	if len(got.Compacted.PTPs) != len(ref.Compacted.PTPs) {
		t.Fatalf("STL sizes differ: %d vs %d", len(got.Compacted.PTPs), len(ref.Compacted.PTPs))
	}
	for i := range ref.Compacted.PTPs {
		a, err := HashPTP(ref.Compacted.PTPs[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := HashPTP(got.Compacted.PTPs[i])
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("PTP %d differs after recovery", i)
		}
	}
}

// TestCrashRecoveryEveryCutPoint is the durability acceptance test: one
// campaign directory survives a kill after each PTP in turn — first
// before any work is journaled, then after each journaled outcome — and
// the final resumed run produces a report and STL byte-identical to the
// uninterrupted reference.
func TestCrashRecoveryEveryCutPoint(t *testing.T) {
	cfg := gpu.DefaultConfig()
	copt := core.Options{Workers: 4}
	ref, want := referenceRun(t)

	dir := t.TempDir()
	// DIVG is excluded without entering any stage, so the kill points are
	// the two candidates; each kill lands while that PTP is mid-pipeline,
	// after every earlier PTP's record is fsync'd.
	for _, cut := range []string{"IMM", "MEM"} {
		lib, ms := testEnv(t)
		ctx, cancel := context.WithCancel(context.Background())
		_, err := Run(ctx, cfg, ms, lib, copt, Options{
			CheckpointDir: dir,
			FCTolerance:   5,
			StageHook: func(ptp string, stage core.Stage) error {
				if ptp == cut && stage == core.StagePartition {
					cancel()
				}
				return nil
			},
		})
		cancel()
		if err == nil {
			t.Fatalf("run killed at %s reported success", cut)
		}
	}

	lib, ms := testEnv(t)
	final, err := Run(context.Background(), cfg, ms, lib, copt,
		Options{CheckpointDir: dir, FCTolerance: 5})
	if err != nil {
		t.Fatal(err)
	}
	if final.Resumed != 1 {
		t.Fatalf("final run resumed %d outcomes, want 1 (IMM)", final.Resumed)
	}
	assertSameResult(t, ref, final, want)
}

// TestTornFinalRecordIsSalvaged is the torn-write acceptance test: a
// crash mid-append leaves a partial record; the resume drops it with an
// explicit salvage message, replays the good prefix, and recomputes the
// lost PTP to a byte-identical result.
func TestTornFinalRecordIsSalvaged(t *testing.T) {
	cfg := gpu.DefaultConfig()
	copt := core.Options{Workers: 4}
	ref, want := referenceRun(t)

	dir := t.TempDir()
	lib, ms := testEnv(t)
	if _, err := Run(context.Background(), cfg, ms, lib, copt,
		Options{CheckpointDir: dir, FCTolerance: 5}); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, WALFile)
	// Simulate a torn write: the last record lost its tail (no newline).
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	torn := append(bytes.Join(lines[:len(lines)-1], []byte("\n")), '\n')
	torn = append(torn, lines[len(lines)-1][:len(lines[len(lines)-1])/2]...)
	if err := os.WriteFile(walPath, torn, 0o666); err != nil {
		t.Fatal(err)
	}

	lib2, ms2 := testEnv(t)
	var logged []string
	got, err := Run(context.Background(), cfg, ms2, lib2, copt, Options{
		CheckpointDir: dir, FCTolerance: 5,
		Logf: func(format string, args ...any) {
			logged = append(logged, format)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	salvage := strings.Join(got.Notes, "\n")
	if !strings.Contains(salvage, "salvaged") || !strings.Contains(salvage, "dropped corrupt tail") {
		t.Fatalf("no explicit salvage message: %q", got.Notes)
	}
	if len(logged) == 0 {
		t.Error("salvage message was not logged via Logf")
	}
	assertSameResult(t, ref, got, want)
}

// TestFlippedCRCByteIsSalvaged: a single flipped byte inside a record's
// payload fails that record's CRC32C; recovery truncates at the last
// good record, reports the mismatch, and the resume recomputes the rest
// to a byte-identical result.
func TestFlippedCRCByteIsSalvaged(t *testing.T) {
	cfg := gpu.DefaultConfig()
	copt := core.Options{Workers: 4}
	ref, want := referenceRun(t)

	dir := t.TempDir()
	lib, ms := testEnv(t)
	if _, err := Run(context.Background(), cfg, ms, lib, copt,
		Options{CheckpointDir: dir, FCTolerance: 5}); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, WALFile)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the last record while keeping it valid
	// JSON: only the CRC can notice.
	i := bytes.LastIndex(data, []byte(`"name":"DIVG"`))
	if i < 0 {
		t.Fatalf("DIVG outcome not found in journal")
	}
	data[i+len(`"name":"`)] = 'X'
	if err := os.WriteFile(walPath, data, 0o666); err != nil {
		t.Fatal(err)
	}

	rp, err := journal.Scan(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Kind != journal.CorruptCRC || !strings.Contains(rp.Reason, "CRC32C mismatch") {
		t.Fatalf("corruption not classified as a CRC mismatch: kind=%s reason=%q", rp.Kind, rp.Reason)
	}

	lib2, ms2 := testEnv(t)
	got, err := Run(context.Background(), cfg, ms2, lib2, copt,
		Options{CheckpointDir: dir, FCTolerance: 5})
	if err != nil {
		t.Fatal(err)
	}
	if salvage := strings.Join(got.Notes, "\n"); !strings.Contains(salvage, "CRC32C mismatch") {
		t.Fatalf("salvage message does not name the CRC mismatch: %q", got.Notes)
	}
	// Everything before the flipped record resumed; only the lost tail
	// was recomputed.
	if got.Resumed != 2 {
		t.Fatalf("resumed %d outcomes, want 2", got.Resumed)
	}
	assertSameResult(t, ref, got, want)
}

// TestLegacyCheckpointMigration: a checkpoint.json written by the
// pre-journal format resumes — its entries are migrated into a fresh
// journal and the final result is byte-identical.
func TestLegacyCheckpointMigration(t *testing.T) {
	cfg := gpu.DefaultConfig()
	copt := core.Options{Workers: 4}
	ref, want := referenceRun(t)

	// Build a half-finished campaign, then express it as a legacy
	// checkpoint.json in a directory with no journal.
	walDir := t.TempDir()
	lib, ms := testEnv(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, _ = Run(ctx, cfg, ms, lib, copt, Options{
		CheckpointDir: walDir, FCTolerance: 5,
		StageHook: func(ptp string, stage core.Stage) error {
			if ptp == "MEM" && stage == core.StagePartition {
				cancel()
			}
			return nil
		},
	})
	ck, err := LoadCheckpoint(walDir)
	if err != nil || ck == nil || len(ck.Entries) != 1 {
		t.Fatalf("seed checkpoint: %+v, %v", ck, err)
	}
	legacyDir := t.TempDir()
	ck.Version = 1
	if err := ck.Save(legacyDir); err != nil {
		t.Fatal(err)
	}

	lib2, ms2 := testEnv(t)
	got, err := Run(context.Background(), cfg, ms2, lib2, copt,
		Options{CheckpointDir: legacyDir, FCTolerance: 5})
	if err != nil {
		t.Fatal(err)
	}
	if notes := strings.Join(got.Notes, "\n"); !strings.Contains(notes, "migrated legacy") {
		t.Fatalf("migration not reported: %q", got.Notes)
	}
	if got.Resumed != 1 {
		t.Fatalf("resumed %d outcomes from the legacy checkpoint, want 1", got.Resumed)
	}
	assertSameResult(t, ref, got, want)

	// The migration wrote a journal; a further resume uses it directly.
	if _, err := os.Stat(filepath.Join(legacyDir, WALFile)); err != nil {
		t.Fatalf("migration left no journal: %v", err)
	}
}

// TestCorruptLegacyCheckpointNamesFileAndRemedy is the regression test
// for the opaque-JSON-error bug: a truncated checkpoint.json must fail
// with the file path and a suggested way out, not a bare decode error.
func TestCorruptLegacyCheckpointNamesFileAndRemedy(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint.json")
	// A checkpoint torn mid-write: valid prefix, abrupt end.
	if err := os.WriteFile(path, []byte(`{"version":1,"configHash":"abc","entries":[{"index":0,`), 0o666); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCheckpoint(dir)
	if err == nil {
		t.Fatal("truncated checkpoint loaded without error")
	}
	msg := err.Error()
	if !strings.Contains(msg, path) {
		t.Errorf("error does not name the file: %q", msg)
	}
	if !strings.Contains(msg, "truncated or corrupt") ||
		!strings.Contains(msg, "-fsck") || !strings.Contains(msg, "start fresh") {
		t.Errorf("error does not suggest a remedy: %q", msg)
	}
}

// TestLoadCheckpointMissingIsNotError: a fresh directory starts fresh.
func TestLoadCheckpointMissingIsNotError(t *testing.T) {
	ck, err := LoadCheckpoint(t.TempDir())
	if err != nil || ck != nil {
		t.Fatalf("fresh dir: ck=%+v err=%v", ck, err)
	}
}
