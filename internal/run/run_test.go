package run

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"gpustl/internal/core"
	"gpustl/internal/gpu"
	"gpustl/internal/ptpgen"
	"gpustl/internal/stl"
)

// testEnv builds a small DU library and its module set. The module set
// is rebuilt per call so each Run starts from fresh campaigns.
func testEnv(t testing.TB) (*stl.STL, *core.ModuleSet) {
	t.Helper()
	lib := &stl.STL{PTPs: []*stl.PTP{
		ptpgen.IMM(20, 61),
		ptpgen.MEM(20, 62),
		ptpgen.DIVG(3, 2, 63), // excluded: no admissible regions
	}}
	ms, err := core.NewModuleSet(lib, 1500, 1)
	if err != nil {
		t.Fatal(err)
	}
	return lib, ms
}

func render(t testing.TB, rep *Report) string {
	t.Helper()
	var buf bytes.Buffer
	rep.Render(&buf)
	return buf.String()
}

func TestRunCompactsLikeCompactSTL(t *testing.T) {
	lib, ms := testEnv(t)
	rep, err := Run(context.Background(), gpu.DefaultConfig(), ms, lib,
		core.Options{Workers: 4}, Options{FCTolerance: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != 3 || len(rep.Compacted.PTPs) != 3 {
		t.Fatalf("outcome counts: %d, %d", len(rep.Outcomes), len(rep.Compacted.PTPs))
	}
	if rep.Excluded != 1 || rep.Outcomes[2].Status != StatusExcluded {
		t.Fatalf("DIVG not excluded: %+v", rep.Outcomes[2])
	}
	if rep.Compacted.PTPs[2] != lib.PTPs[2] {
		t.Error("excluded PTP was replaced")
	}
	for _, o := range rep.Outcomes[:2] {
		if o.Status != StatusCompacted {
			t.Fatalf("%s: %+v", o.Name, o)
		}
	}
	if rep.SizeReduction() <= 0 {
		t.Errorf("no reduction: %.2f%%", rep.SizeReduction())
	}

	// Same inputs through the plain pipeline agree on the compacted sizes.
	lib2, ms2 := testEnv(t)
	plain, err := core.CompactSTL(gpu.DefaultConfig(), ms2, lib2, core.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if plain.CompSize != rep.CompSize || plain.OrigSize != rep.OrigSize {
		t.Errorf("run %d->%d != core %d->%d",
			rep.OrigSize, rep.CompSize, plain.OrigSize, plain.CompSize)
	}
}

func TestKillAndResumeRendersByteIdentical(t *testing.T) {
	cfg := gpu.DefaultConfig()
	copt := core.Options{Workers: 4}

	// Reference: one uninterrupted run.
	lib, ms := testEnv(t)
	ref, err := Run(context.Background(), cfg, ms, lib, copt, Options{FCTolerance: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := render(t, ref)

	// Interrupted run: the parent context is canceled as the second PTP
	// enters its logic trace, after the first PTP's checkpoint entry is
	// on disk.
	dir := t.TempDir()
	lib2, ms2 := testEnv(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := Options{
		CheckpointDir: dir,
		FCTolerance:   5,
		StageHook: func(ptp string, stage core.Stage) error {
			if ptp == "MEM" && stage == core.StageTrace {
				cancel()
			}
			return nil
		},
	}
	partial, err := Run(ctx, cfg, ms2, lib2, copt, opts)
	if err == nil {
		t.Fatal("interrupted run reported success")
	}
	if len(partial.Outcomes) != 1 {
		t.Fatalf("partial run finished %d PTPs, want 1", len(partial.Outcomes))
	}
	ck, err := LoadCheckpoint(dir)
	if err != nil || ck == nil {
		t.Fatalf("no checkpoint after interruption: %v", err)
	}
	if len(ck.Entries) != 1 || ck.Entries[0].Name != "IMM" {
		t.Fatalf("checkpoint entries: %+v", ck.Entries)
	}

	// Resume with fresh campaigns: the first PTP replays from the
	// checkpoint, the rest compute, and the report is byte-identical.
	lib3, ms3 := testEnv(t)
	resumed, err := Run(context.Background(), cfg, ms3, lib3, copt,
		Options{CheckpointDir: dir, FCTolerance: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed != 1 || !resumed.Outcomes[0].Resumed {
		t.Fatalf("resume did not replay the checkpoint: %+v", resumed.Outcomes[0])
	}
	if got := render(t, resumed); got != want {
		t.Errorf("resumed report differs:\n--- uninterrupted\n%s--- resumed\n%s", want, got)
	}

	// The compacted programs agree instruction-for-instruction too.
	for i := range ref.Compacted.PTPs {
		a, err := HashPTP(ref.Compacted.PTPs[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := HashPTP(resumed.Compacted.PTPs[i])
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("PTP %d differs after resume", i)
		}
	}
}

func TestInjectedPanicQuarantinesOnePTPOnly(t *testing.T) {
	lib, ms := testEnv(t)
	opts := Options{
		FCTolerance:   5,
		MaxPTPRetries: 3,
		StageHook: func(ptp string, stage core.Stage) error {
			if ptp == "IMM" && stage == core.StageReduce {
				panic("injected failure")
			}
			return nil
		},
	}
	rep, err := Run(context.Background(), gpu.DefaultConfig(), ms, lib,
		core.Options{Workers: 4}, opts)
	if err != nil {
		t.Fatalf("one bad PTP aborted the run: %v", err)
	}
	o := rep.Outcomes[0]
	if o.Status != StatusQuarantined || o.Stage != core.StageReduce {
		t.Fatalf("IMM outcome: %+v", o)
	}
	// StageReduce sits after the stage-3 campaign commit, so despite the
	// retry budget the PTP must quarantine on the first attempt —
	// re-running against the mutated campaign would over-compact.
	if o.Attempts != 1 {
		t.Fatalf("post-commit crash was retried: %d attempts", o.Attempts)
	}
	if !strings.Contains(o.Err, "injected failure") || !strings.Contains(o.Err, "quarantined") {
		t.Fatalf("panic message lost: %q", o.Err)
	}
	if rep.Compacted.PTPs[0] != lib.PTPs[0] {
		t.Error("quarantined PTP was not kept in its original form")
	}
	// The remaining candidate still compacts.
	if rep.Outcomes[1].Status != StatusCompacted {
		t.Fatalf("MEM outcome: %+v", rep.Outcomes[1])
	}
	if rep.Quarantined != 1 || rep.Reverted != 0 {
		t.Errorf("Quarantined = %d, Reverted = %d", rep.Quarantined, rep.Reverted)
	}
}

func TestPoisonPTPRetriedThenQuarantined(t *testing.T) {
	lib, ms := testEnv(t)
	attempts := 0
	opts := Options{
		FCTolerance:   5,
		MaxPTPRetries: 2,
		StageHook: func(ptp string, stage core.Stage) error {
			// StagePartition precedes the fault simulation, so the
			// campaign is untouched and every retry is safe.
			if ptp == "IMM" && stage == core.StagePartition {
				attempts++
				panic("poison PTP")
			}
			return nil
		},
	}
	rep, err := Run(context.Background(), gpu.DefaultConfig(), ms, lib,
		core.Options{Workers: 4}, opts)
	if err != nil {
		t.Fatalf("poison PTP aborted the run: %v", err)
	}
	o := rep.Outcomes[0]
	if o.Status != StatusQuarantined {
		t.Fatalf("IMM outcome: %+v", o)
	}
	if attempts != 3 || o.Attempts != 3 {
		t.Fatalf("attempts = %d (hook saw %d), want 1+MaxPTPRetries = 3", o.Attempts, attempts)
	}
	if rep.Compacted.PTPs[0] != lib.PTPs[0] {
		t.Error("quarantined PTP was not kept in its original form")
	}
	// Keeping the original is what makes quarantine FC-safe: the output
	// STL's programs are a superset of the compacted ones, so whole-STL
	// coverage cannot fall below the uncompacted baseline.
	if rep.CompSize > rep.OrigSize {
		t.Errorf("quarantine grew the STL: %d -> %d", rep.OrigSize, rep.CompSize)
	}
	if rep.Outcomes[1].Status != StatusCompacted {
		t.Fatalf("campaign did not continue past the poison PTP: %+v", rep.Outcomes[1])
	}
}

func TestTransientPanicRecoversOnRetry(t *testing.T) {
	lib, ms := testEnv(t)
	failures := 0
	opts := Options{
		FCTolerance:   5,
		MaxPTPRetries: 1,
		StageHook: func(ptp string, stage core.Stage) error {
			if ptp == "IMM" && stage == core.StagePartition && failures == 0 {
				failures++
				panic("transient")
			}
			return nil
		},
	}
	rep, err := Run(context.Background(), gpu.DefaultConfig(), ms, lib,
		core.Options{Workers: 4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Outcomes[0]
	if o.Status != StatusCompacted || o.Attempts != 2 {
		t.Fatalf("transient panic did not recover: %+v", o)
	}
}

func TestDeterministicErrorIsNotRetried(t *testing.T) {
	lib, ms := testEnv(t)
	calls := 0
	opts := Options{
		MaxPTPRetries: 5,
		StageHook: func(ptp string, stage core.Stage) error {
			if ptp == "IMM" && stage == core.StagePartition {
				calls++
				return errors.New("deterministic failure")
			}
			return nil
		},
	}
	rep, err := Run(context.Background(), gpu.DefaultConfig(), ms, lib,
		core.Options{Workers: 4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Outcomes[0]
	if o.Status != StatusRevertedError {
		t.Fatalf("IMM outcome: %+v", o)
	}
	if calls != 1 || o.Attempts != 1 {
		t.Fatalf("deterministic error was retried: %d calls, %d attempts", calls, o.Attempts)
	}
}

func TestStageErrorAttribution(t *testing.T) {
	lib, ms := testEnv(t)
	sentinel := errors.New("hook says no")
	opts := Options{
		StageHook: func(ptp string, stage core.Stage) error {
			if stage == core.StageFaultSim {
				return sentinel
			}
			return nil
		},
	}
	rep, err := Run(context.Background(), gpu.DefaultConfig(), ms, lib,
		core.Options{Workers: 4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range rep.Outcomes[:2] {
		if o.Status != StatusRevertedError || o.Stage != core.StageFaultSim {
			t.Fatalf("%s: %+v", o.Name, o)
		}
		if !strings.Contains(o.Err, "failed at stage faultsim") ||
			!strings.Contains(o.Err, sentinel.Error()) {
			t.Fatalf("%s: error %q", o.Name, o.Err)
		}
	}
}

func TestFCGuardReverts(t *testing.T) {
	lib, ms := testEnv(t)
	// A negative tolerance demands the compacted PTP IMPROVE coverage by
	// 1000 points — impossible, so every candidate reverts.
	rep, err := Run(context.Background(), gpu.DefaultConfig(), ms, lib,
		core.Options{Workers: 4}, Options{FCTolerance: -1000})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range rep.Outcomes[:2] {
		if o.Status != StatusRevertedFC {
			t.Fatalf("%s: %+v", o.Name, o)
		}
		if rep.Compacted.PTPs[i] != lib.PTPs[i] {
			t.Errorf("%s not reverted to original", o.Name)
		}
	}
	if rep.CompSize != rep.OrigSize {
		t.Errorf("reverted STL changed size: %d -> %d", rep.OrigSize, rep.CompSize)
	}
}

func TestWatchdogTimesOutHungStage(t *testing.T) {
	lib, ms := testEnv(t)
	// A 1ns budget per stage cannot finish any simulation: the watchdog
	// cancels each PTP, which must revert rather than abort the run.
	rep, err := Run(context.Background(), gpu.DefaultConfig(), ms, lib,
		core.Options{Workers: 4}, Options{StageTimeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range rep.Outcomes[:2] {
		if o.Status != StatusQuarantined {
			t.Fatalf("%s survived a 1ns stage budget: %+v", o.Name, o)
		}
	}
	if rep.Outcomes[2].Status != StatusExcluded {
		t.Fatalf("excluded PTP: %+v", rep.Outcomes[2])
	}
	if rep.Quarantined != 2 {
		t.Errorf("Quarantined = %d", rep.Quarantined)
	}
}

func TestCheckpointRejectsChangedConfig(t *testing.T) {
	dir := t.TempDir()
	cfg := gpu.DefaultConfig()
	copt := core.Options{Workers: 4}
	lib, ms := testEnv(t)
	if _, err := Run(context.Background(), cfg, ms, lib, copt,
		Options{CheckpointDir: dir}); err != nil {
		t.Fatal(err)
	}

	// A different library must refuse to resume from this checkpoint.
	other := &stl.STL{PTPs: []*stl.PTP{ptpgen.IMM(20, 99)}}
	ms2, err := core.NewModuleSet(other, 1500, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), cfg, ms2, other, copt,
		Options{CheckpointDir: dir})
	if err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("changed config accepted: %v", err)
	}
}

func TestStageErrorUnwraps(t *testing.T) {
	cause := errors.New("boom")
	se := &StageError{Stage: core.StageTrace, PTP: "X", Err: cause}
	if !errors.Is(se, cause) {
		t.Error("Unwrap broken")
	}
	if !strings.Contains(se.Error(), "X") || !strings.Contains(se.Error(), "trace") {
		t.Errorf("message: %q", se.Error())
	}
}
