package run

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"gpustl/internal/circuits"
	"gpustl/internal/core"
	"gpustl/internal/failpoint"
	"gpustl/internal/fault"
	"gpustl/internal/gpu"
	"gpustl/internal/obs"
	"gpustl/internal/overload"
	"gpustl/internal/report"
	"gpustl/internal/stl"
)

// Failpoints on the runner's failure surfaces. run.stage.panic fires
// inside pipeline stage transitions, but never at or past the commit
// stage: a crash there quarantines the PTP without retry (committed
// drops make re-running unsound), which would change the output — the
// site exists to exercise the retry path, not to force divergence.
// run.precommit.crash and run.postcommit.crash bracket the journal
// append of a finished PTP, the two halves of the crash-consistency
// contract: before the append a resume redoes the PTP, after it a
// resume skips it, and either way the final report is identical.
var (
	fpStagePanic      = failpoint.New("run.stage.panic")
	fpPrecommitCrash  = failpoint.New("run.precommit.crash")
	fpPostcommitCrash = failpoint.New("run.postcommit.crash")
)

// Status classifies the outcome of one PTP.
type Status string

const (
	// StatusCompacted: the five stages succeeded and the compacted PTP
	// passed the FC-safety guard.
	StatusCompacted Status = "compacted"
	// StatusRevertedError: a stage failed with a deterministic error;
	// the original PTP is kept.
	StatusRevertedError Status = "reverted-error"
	// StatusRevertedFC: compaction succeeded but the compacted PTP's
	// standalone fault coverage fell more than FCTolerance below the
	// original's; the original PTP is kept.
	StatusRevertedFC Status = "reverted-fc"
	// StatusExcluded: the PTP is not a compaction candidate (no
	// admissible regions, or a target module without a gate-level model)
	// and passes through untouched.
	StatusExcluded Status = "excluded"
	// StatusQuarantined: the PTP's pipeline crashed (panic) or stalled
	// (watchdog timeout) on every allowed attempt. The original PTP is
	// kept in the output STL — FC-safe by construction — and the
	// campaign continues instead of aborting or endlessly re-crashing.
	StatusQuarantined Status = "quarantined"
)

// Options tunes the resilient runner.
type Options struct {
	// CheckpointDir enables durable checkpoint/resume: every finished
	// PTP is appended to CheckpointDir/campaign.wal (fsync'd,
	// CRC-protected), and a later run over the same inputs resumes
	// after the last journaled PTP. Empty disables persistence.
	CheckpointDir string
	// Deadline bounds the whole campaign: Run derives its context with
	// this timeout, and the deadline propagates through the fault
	// simulator down to distributed workers (X-Gpustl-Deadline), so no
	// tier burns cycles on a campaign that already timed out. A run that
	// hits the deadline behaves exactly like a canceled one: finished
	// PTPs are journaled, a resume picks up after them. 0 disables.
	Deadline time.Duration
	// Admission, when set, gates the campaign through an overload
	// admission pool: Run acquires len of the library's programs worth of
	// cost before creating the checkpoint directory or any artifact, so a
	// shed campaign leaves no partial state — it fails fast with
	// ErrOverloaded and nothing to clean up. A nil pool admits instantly.
	Admission *overload.Admission
	// StageTimeout bounds each pipeline stage of each PTP; a stage that
	// exceeds it is canceled and the PTP falls to the quarantine
	// policy. 0 disables the watchdog.
	StageTimeout time.Duration
	// FCTolerance is the maximum standalone fault-coverage loss (in
	// percentage points) a compacted PTP may show before the FC-safety
	// guard reverts it. 0 means any measurable loss reverts.
	FCTolerance float64
	// MaxPTPRetries is how many times a PTP whose pipeline panics or
	// times out is re-attempted before being quarantined (kept in its
	// original form while the campaign continues). 0 quarantines on the
	// first crash. Deterministic stage errors are never retried. A
	// crash after the stage-3 fault simulation committed its drops is
	// quarantined immediately regardless — re-running against the
	// mutated campaign would mislabel instructions.
	MaxPTPRetries int
	// StageHook, when set, is called as each PTP enters each stage.
	// Returning an error aborts that PTP (it reverts). Used by tests to
	// inject failures and by callers for progress reporting.
	StageHook func(ptp string, stage core.Stage) error
	// Logf, when set, receives operational notes (journal salvage,
	// legacy-checkpoint migration, quarantine retries) as they happen.
	Logf func(format string, args ...any)
	// Tracer, when set, records the campaign -> PTP -> stage span
	// hierarchy of the run. Spans are contiguous within a PTP (each
	// stage span ends as the next begins), so the per-stage totals of a
	// trace account for the campaign's wall-clock.
	Tracer *obs.Tracer
	// Metrics, when set, receives the runner's counters and gauges
	// (outcome counts, retries, FC deltas, progress) and is threaded
	// into the fault simulator through core.Options by the caller.
	Metrics *obs.Registry
	// Usage, when set with Tenant, meters per-tenant consumption the
	// runner can see directly: bytes appended to the campaign journal.
	// (Worker-seconds and cache traffic are metered by the server,
	// which owns those resources.)
	Usage *obs.UsageMeter
	// Tenant attributes Usage; empty disables usage metering.
	Tenant string
	// OnOutcome, when set, is called after every PTP settles (including
	// resumed ones) with the outcome and running progress — the hook the
	// CLI's live progress line hangs off.
	OnOutcome func(o Outcome, done, total int)
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Outcome is one PTP's row of the run report. The numeric fields are
// duplicated out of core.Result so a resumed run (which never re-runs
// finished PTPs) renders byte-identically to an uninterrupted one.
type Outcome struct {
	Name   string
	Status Status
	Stage  core.Stage // stage reached when a failure occurred
	Err    string
	// Attempts counts pipeline attempts (>1 only for retried PTPs).
	Attempts int

	OrigSize, CompSize         int
	OrigDuration, CompDuration uint64
	OrigFC, CompFC             float64
	DetectedThisRun            int
	// Resumed marks outcomes reconstructed from the journal rather
	// than computed this run (not rendered: reports must not depend on
	// where the work ran).
	Resumed bool
}

// Report is the result of a resilient STL compaction run.
type Report struct {
	Outcomes []Outcome
	// Compacted holds one PTP per library entry, in order: the compacted
	// program where compaction succeeded, the original otherwise.
	Compacted          *stl.STL
	OrigSize, CompSize int
	Excluded           int
	Reverted           int
	Quarantined        int
	Resumed            int
	// Notes carries operational messages (journal salvage, migration).
	// They are not part of Render — reports stay byte-identical across
	// kills and resumes.
	Notes []string
}

// SizeReduction returns the whole-STL size compaction percentage.
func (r *Report) SizeReduction() float64 {
	if r.OrigSize == 0 {
		return 0
	}
	return 100 * (1 - float64(r.CompSize)/float64(r.OrigSize))
}

// Render writes the run report. The output is deterministic — no
// wall-clock times, no resume markers — so a run that was killed and
// resumed renders byte-identically to one that ran straight through.
func (r *Report) Render(w io.Writer) {
	tb := report.Table{
		Title:   "RESILIENT STL COMPACTION",
		Headers: []string{"PTP", "status", "size", "duration", "FC", "detected"},
	}
	for _, o := range r.Outcomes {
		status := string(o.Status)
		if o.Status == StatusRevertedError || o.Status == StatusQuarantined {
			status += " @" + string(o.Stage)
		}
		size := fmt.Sprintf("%d", o.OrigSize)
		dur := "-"
		fc := "-"
		det := "-"
		if o.Status == StatusCompacted || o.Status == StatusRevertedFC {
			size = fmt.Sprintf("%d->%d", o.OrigSize, o.CompSize)
			dur = fmt.Sprintf("%d->%d", o.OrigDuration, o.CompDuration)
			fc = fmt.Sprintf("%.2f->%.2f", o.OrigFC, o.CompFC)
			det = fmt.Sprintf("%d", o.DetectedThisRun)
		}
		tb.AddRow(o.Name, status, size, dur, fc, det)
	}
	tb.Render(w)
	fmt.Fprintf(w, "total: %d -> %d instructions (%.2f%% smaller), %d excluded, %d reverted, %d quarantined\n",
		r.OrigSize, r.CompSize, r.SizeReduction(), r.Excluded, r.Reverted, r.Quarantined)
	for _, o := range r.Outcomes {
		if o.Err != "" {
			fmt.Fprintf(w, "  %s: %s\n", o.Name, o.Err)
		}
	}
}

// Run compacts the whole library with per-PTP fault isolation. Unlike
// core.CompactSTL, a PTP that fails — stage error, panic, watchdog
// timeout, or FC-safety violation — does not abort the run: the original
// PTP is kept, the failure is recorded in its Outcome, and the remaining
// PTPs still compact. Crash-class failures (panic/timeout) are retried
// up to MaxPTPRetries times and then quarantined. Only a canceled
// parent context (or a journal I/O failure) stops the run, and then the
// returned partial Report is still valid alongside the error; with a
// CheckpointDir the next Run resumes after the last journaled PTP.
func Run(ctx context.Context, cfg gpu.Config, ms *core.ModuleSet, lib *stl.STL,
	copt core.Options, opts Options) (*Report, error) {

	hash, err := ConfigHash(cfg, ms, lib, copt)
	if err != nil {
		return nil, err
	}
	if opts.Deadline > 0 {
		// WithTimeoutCause: when the deadline fires, context.Cause names
		// the campaign deadline instead of a bare DeadlineExceeded, and
		// every abort path below reports it.
		var cancel context.CancelFunc
		// The cause wraps DeadlineExceeded so errors.Is classification
		// (and journal.IsTransient) still see the sentinel.
		ctx, cancel = context.WithTimeoutCause(ctx, opts.Deadline,
			fmt.Errorf("run: campaign deadline %s exceeded: %w", opts.Deadline, context.DeadlineExceeded))
		defer cancel()
	}
	// Admission comes before MkdirAll and the journal open: a shed
	// campaign must leave no artifact at all, only a fast ErrOverloaded.
	var cost int64
	for _, p := range lib.PTPs {
		cost += int64(len(p.Prog))
	}
	release, aerr := opts.Admission.Acquire(ctx, cost)
	if aerr != nil {
		return nil, fmt.Errorf("run: campaign shed by admission control: %w", aerr)
	}
	defer release()
	rep := &Report{Compacted: &stl.STL{}}
	ck := &Checkpoint{Version: CheckpointVersion, ConfigHash: hash}
	var clog *campaignLog
	if opts.CheckpointDir != "" {
		if err := os.MkdirAll(opts.CheckpointDir, 0o777); err != nil {
			return nil, fmt.Errorf("run: checkpoint dir: %w", err)
		}
		cl, cck, notes, err := openCampaign(opts.CheckpointDir, hash, len(lib.PTPs))
		if err != nil {
			return nil, err
		}
		clog, ck = cl, cck
		rep.Notes = notes
		for _, n := range notes {
			opts.logf("%s", n)
		}
		defer clog.Close()
	}

	// The campaign span parents on whatever span the caller put in ctx
	// (the server's execute span, itself possibly a remote child of the
	// submitting client), so a distributed campaign's whole pipeline
	// lands in one trace.
	campSpan := opts.Tracer.Start(obs.SpanFromContext(ctx), obs.KindCampaign, "campaign")
	campSpan.Annotate("ptps", fmt.Sprintf("%d", len(lib.PTPs)))
	defer campSpan.End()
	if opts.Usage != nil && opts.Tenant != "" && clog != nil {
		startBytes := clog.j.Size()
		defer func() {
			if delta := clog.j.Size() - startBytes; delta > 0 {
				opts.Usage.AddJournalBytes(opts.Tenant, uint64(delta))
			}
		}()
	}
	opts.Metrics.Gauge("gpustl_run_ptps_planned").Set(float64(len(lib.PTPs)))

	compactors := map[circuits.ModuleKind]*core.Compactor{}
	for kind, m := range ms.Modules {
		compactors[kind] = core.New(cfg, m, ms.Faults[kind], copt)
	}
	// dropped tracks each campaign's detected-id set so the per-PTP
	// journal record carries only this PTP's delta.
	dropped := map[circuits.ModuleKind][]fault.ID{}

	for i, p := range lib.PTPs {
		c := compactors[p.Target]
		if i < len(ck.Entries) {
			// Resume path: validate the entry against the library, then
			// replay its campaign delta and report row.
			e := ck.Entries[i]
			ph, err := HashPTP(p)
			if err != nil {
				return rep, err
			}
			if e.Index != i || e.Name != p.Name || e.OrigHash != ph {
				return rep, fmt.Errorf("run: journaled entry %d (%s) does not match library PTP %s; delete %s to start over",
					i, e.Name, p.Name, opts.CheckpointDir)
			}
			comp := p
			if e.Status == StatusCompacted {
				comp, err = stl.ReadPTP(bytes.NewReader(e.Compacted))
				if err != nil {
					return rep, fmt.Errorf("run: journaled entry %d: %w", i, err)
				}
			}
			if c != nil && len(e.DroppedFaults) > 0 {
				ids := make([]fault.ID, len(e.DroppedFaults))
				for j, id := range e.DroppedFaults {
					ids[j] = fault.ID(id)
				}
				if err := c.Campaign.RestoreDetected(ids); err != nil {
					return rep, fmt.Errorf("run: journaled entry %d: %w", i, err)
				}
				dropped[p.Target] = c.Campaign.DetectedIDs()
			}
			o := Outcome{
				Name: e.Name, Status: e.Status, Stage: core.Stage(e.Stage), Err: e.Error,
				Attempts: e.Attempts,
				OrigSize: e.OrigSize, CompSize: e.CompSize,
				OrigDuration: e.OrigDuration, CompDuration: e.CompDuration,
				OrigFC: e.OrigFC, CompFC: e.CompFC,
				DetectedThisRun: e.DetectedThisRun,
				Resumed:         true,
			}
			rep.Resumed++
			accumulate(rep, o, comp)
			opts.Metrics.Counter("gpustl_run_resumed_total").Inc()
			opts.recordOutcome(o, len(rep.Outcomes), len(lib.PTPs))
			continue
		}

		if err := ctx.Err(); err != nil {
			// Canceled between PTPs: the journal already holds every
			// finished entry, so just surface the partial report. The
			// cause (admission shed, campaign deadline, client cancel)
			// beats the bare Canceled/DeadlineExceeded sentinel.
			return rep, fmt.Errorf("run: canceled after %d of %d PTPs: %w",
				i, len(lib.PTPs), context.Cause(ctx))
		}

		e := Entry{Index: i, Name: p.Name, OrigSize: len(p.Prog)}
		if e.OrigHash, err = HashPTP(p); err != nil {
			return rep, err
		}

		ptpSpan := opts.Tracer.Start(campSpan, obs.KindPTP, p.Name)
		comp := p
		if c == nil || len(p.ARCs()) == 0 {
			e.Status = StatusExcluded
			e.CompSize = len(p.Prog)
		} else {
			res, stage, attempts, cerr := compactWithRetry(ctx, c, p, opts, ptpSpan)
			e.Attempts = attempts
			// Record the campaign delta whatever the outcome: stage-3
			// drops may have committed even when a later stage failed,
			// and the original (kept) PTP covers a superset of them.
			ids := c.Campaign.DetectedIDs()
			e.DroppedFaults = diffIDs(dropped[p.Target], ids)
			dropped[p.Target] = ids

			switch {
			case cerr != nil && ctx.Err() != nil:
				// The parent context died mid-PTP: this PTP is not
				// finished, so do not journal it — a resume redoes it.
				ptpSpan.Annotate("canceled", "true")
				ptpSpan.End()
				if cause := context.Cause(ctx); cause != nil &&
					!errors.Is(cause, context.Canceled) && !errors.Is(cerr, cause) {
					return rep, fmt.Errorf("%w (campaign aborted: %v)", cerr, cause)
				}
				return rep, cerr
			case cerr != nil && failKindOf(cerr) == FailOverload:
				// Overload is the cluster's state, not this PTP's fault:
				// journaling a quarantine would poison a healthy PTP.
				// Abort the campaign instead — everything finished so far
				// is journaled, and a resume retries this PTP when load
				// has eased.
				ptpSpan.Annotate("overloaded", "true")
				ptpSpan.End()
				opts.Metrics.Counter("gpustl_run_overload_aborts_total").Inc()
				return rep, fmt.Errorf("run: PTP %s shed by overload protection after %d attempt(s); resume retries it: %w",
					p.Name, attempts, cerr)
			case cerr != nil:
				se, _ := cerr.(*StageError)
				e.Stage = string(stage)
				e.Error = cerr.Error()
				e.CompSize = len(p.Prog)
				if se != nil && se.Retryable() {
					e.Status = StatusQuarantined
					e.Error = fmt.Sprintf("quarantined after %d attempt(s): %v", attempts, cerr)
				} else {
					e.Status = StatusRevertedError
				}
			default:
				e.CompSize = res.CompSize
				e.OrigDuration = res.OrigDuration
				e.CompDuration = res.CompDuration
				e.OrigFC = res.OrigFC
				e.CompFC = res.CompFC
				e.TotalSBs = res.TotalSBs
				e.RemovedSBs = res.RemovedSBs
				e.Essential = res.Essential
				e.Unessential = res.Unessential
				e.DetectedThisRun = res.DetectedThisRun
				if res.CompFC < res.OrigFC-opts.FCTolerance {
					// FC-safety guard: the compacted program lost more
					// coverage than tolerated; ship the original.
					e.Status = StatusRevertedFC
					e.Error = fmt.Sprintf("run: PTP %s compacted FC %.2f%% is %.2f points below original %.2f%% (tolerance %.2f)",
						p.Name, res.CompFC, res.OrigFC-res.CompFC, res.OrigFC, opts.FCTolerance)
				} else {
					e.Status = StatusCompacted
					comp = res.Compacted
					var buf bytes.Buffer
					if err := stl.WritePTP(&buf, comp); err != nil {
						return rep, fmt.Errorf("run: serializing compacted %s: %w", p.Name, err)
					}
					e.Compacted = json.RawMessage(buf.Bytes())
				}
			}
		}

		ck.Entries = append(ck.Entries, e)
		if clog != nil {
			// Crash-consistency brackets around the commit: a crash (or
			// injected error) before the append loses the entry — a
			// resume redoes this PTP; after it the entry is durable — a
			// resume skips it. Entries are deterministic, so both paths
			// converge on the same report.
			if err := fpPrecommitCrash.Inject(); err != nil {
				ptpSpan.End()
				return rep, err
			}
			// The journal append (fsync'd) is real wall-clock work; give
			// it its own stage span so trace totals stay honest.
			ckSpan := opts.Tracer.Start(ptpSpan, obs.KindStage, "checkpoint")
			err := clog.appendOutcome(e)
			ckSpan.End()
			if err != nil {
				ptpSpan.End()
				return rep, err
			}
			if err := fpPostcommitCrash.Inject(); err != nil {
				ptpSpan.End()
				return rep, err
			}
		}
		ptpSpan.Annotate("status", string(e.Status))
		if e.Attempts > 1 {
			ptpSpan.Annotate("attempts", fmt.Sprintf("%d", e.Attempts))
		}
		ptpSpan.End()
		o := Outcome{
			Name: e.Name, Status: e.Status, Stage: core.Stage(e.Stage), Err: e.Error,
			Attempts: e.Attempts,
			OrigSize: e.OrigSize, CompSize: e.CompSize,
			OrigDuration: e.OrigDuration, CompDuration: e.CompDuration,
			OrigFC: e.OrigFC, CompFC: e.CompFC,
			DetectedThisRun: e.DetectedThisRun,
		}
		accumulate(rep, o, comp)
		opts.recordOutcome(o, len(rep.Outcomes), len(lib.PTPs))
	}
	return rep, nil
}

// recordOutcome publishes one settled PTP's counters and fires the
// progress hook. The FC-delta gauge tracks the most recent measured
// compaction (CompFC - OrigFC, percentage points).
func (o Options) recordOutcome(out Outcome, done, total int) {
	if m := o.Metrics; m != nil {
		m.Counter("gpustl_run_ptps_total").Inc()
		switch out.Status {
		case StatusCompacted:
			m.Counter("gpustl_run_compacted_total").Inc()
		case StatusRevertedError, StatusRevertedFC:
			m.Counter("gpustl_run_reverted_total").Inc()
		case StatusQuarantined:
			m.Counter("gpustl_run_quarantined_total").Inc()
		case StatusExcluded:
			m.Counter("gpustl_run_excluded_total").Inc()
		}
		if out.Attempts > 1 {
			m.Counter("gpustl_run_ptp_retries_total").Add(uint64(out.Attempts - 1))
		}
		if out.Status == StatusCompacted || out.Status == StatusRevertedFC {
			m.Gauge("gpustl_run_fc_delta_pct").Set(out.CompFC - out.OrigFC)
		}
		m.Gauge("gpustl_run_ptps_done").Set(float64(done))
	}
	if o.OnOutcome != nil {
		o.OnOutcome(out, done, total)
	}
}

// accumulate appends one outcome and its surviving PTP to the report.
func accumulate(rep *Report, o Outcome, comp *stl.PTP) {
	rep.Outcomes = append(rep.Outcomes, o)
	rep.Compacted.PTPs = append(rep.Compacted.PTPs, comp)
	rep.OrigSize += o.OrigSize
	rep.CompSize += len(comp.Prog)
	switch o.Status {
	case StatusExcluded:
		rep.Excluded++
	case StatusRevertedError, StatusRevertedFC:
		rep.Reverted++
	case StatusQuarantined:
		rep.Quarantined++
	}
}

// compactWithRetry runs compactOne under the quarantine policy: a
// crash-class failure (panic or watchdog timeout) is retried up to
// opts.MaxPTPRetries times, as long as the failed attempt did not
// commit fault drops to the shared campaign — once stage 3 committed,
// a re-run would label instructions against the mutated campaign and
// over-compact, so the PTP goes straight to quarantine. Deterministic
// stage errors are never retried.
func compactWithRetry(ctx context.Context, c *core.Compactor, p *stl.PTP,
	opts Options, ptpSpan *obs.Span) (res *core.Result, stage core.Stage, attempts int, err error) {

	for {
		attempts++
		before := c.Campaign.Detected()
		res, stage, err = compactOne(ctx, c, p, opts, ptpSpan)
		if err == nil || ctx.Err() != nil {
			return res, stage, attempts, err
		}
		se, ok := err.(*StageError)
		if !ok || !se.Retryable() || attempts > opts.MaxPTPRetries {
			return res, stage, attempts, err
		}
		if core.CommitStage(stage) || c.Campaign.Detected() != before {
			opts.logf("run: PTP %s crashed at stage %s after committing campaign drops; quarantining without retry", p.Name, stage)
			return res, stage, attempts, err
		}
		opts.logf("run: PTP %s attempt %d failed (%s at stage %s); retrying (%d left)",
			p.Name, attempts, se.Kind, stage, opts.MaxPTPRetries-attempts+1)
	}
}

// compactOne runs the pipeline on one PTP with panic isolation and a
// per-stage watchdog. The returned stage is the last stage entered, for
// failure attribution; err (when non-nil) is a *StageError whose Kind
// distinguishes panics and watchdog timeouts from plain errors.
func compactOne(ctx context.Context, c *core.Compactor, p *stl.PTP,
	opts Options, ptpSpan *obs.Span) (res *core.Result, stage core.Stage, err error) {

	cctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	// Layers below the compactor (the dist coordinator, the local
	// simulator) only see this context; carrying the PTP span lets them
	// parent shard spans into the campaign trace.
	cctx = obs.ContextWithSpan(cctx, ptpSpan)

	// curStage mirrors stage for the watchdog's cause message: the timer
	// fires on its own goroutine, so it must not read the plain local.
	var curStage atomic.Value
	curStage.Store(core.StagePartition)

	// Stage spans are contiguous: each stage span ends exactly when the
	// next stage is entered (and the last when the attempt returns), so
	// their durations tile the PTP span without gaps or overlap.
	var stageSpan *obs.Span
	defer func() { stageSpan.End() }()

	// The watchdog cancels the derived context if any single stage runs
	// longer than StageTimeout; entering the next stage re-arms it. The
	// pipeline polls the context inside both simulations, so a hung
	// stage dies within microseconds of the timer firing.
	var watchdog *time.Timer
	if opts.StageTimeout > 0 {
		watchdog = time.AfterFunc(opts.StageTimeout, func() {
			cancel(fmt.Errorf("run: deadline exceeded at stage %s (watchdog %s)",
				curStage.Load(), opts.StageTimeout))
		})
		defer watchdog.Stop()
	}

	stage = core.StagePartition
	onStage := func(s core.Stage) error {
		stage = s
		curStage.Store(s)
		stageSpan.End()
		stageSpan = opts.Tracer.Start(ptpSpan, obs.KindStage, string(s))
		if watchdog != nil {
			watchdog.Reset(opts.StageTimeout)
		}
		if !core.CommitStage(s) {
			// Gated to pre-commit stages: a crash here is retried by the
			// quarantine policy without touching committed state.
			if err := fpStagePanic.Inject(); err != nil {
				return err
			}
		}
		if opts.StageHook != nil {
			return opts.StageHook(p.Name, s)
		}
		return nil
	}

	kind := FailError
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("panic: %v", r)
			kind = FailPanic
		}
		if err != nil {
			switch {
			case errors.Is(err, overload.ErrOverloaded):
				// Overload protection (admission shed, retry budget dry)
				// refused the work: environmental, not this PTP's fault.
				kind = FailOverload
			case kind == FailError && cctx.Err() != nil && ctx.Err() == nil:
				// Only the watchdog cancels the derived context while
				// the parent is still alive. Its cause names the stage
				// that overran — report that, not "context canceled".
				kind = FailTimeout
				if cause := context.Cause(cctx); cause != nil && !errors.Is(cause, context.Canceled) {
					err = cause
				}
			}
			res = nil
			err = &StageError{Stage: stage, PTP: p.Name, Kind: kind, Err: err}
		}
	}()
	res, err = c.CompactPTPCtx(cctx, p, onStage)
	return
}

// diffIDs returns the elements of cur not in prev; both are ascending.
func diffIDs(prev, cur []fault.ID) []int32 {
	var out []int32
	j := 0
	for _, id := range cur {
		for j < len(prev) && prev[j] < id {
			j++
		}
		if j < len(prev) && prev[j] == id {
			continue
		}
		out = append(out, int32(id))
	}
	return out
}
