package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"gpustl/internal/journal"
	"gpustl/internal/obs"
)

// cache is the content-addressed result cache. An entry is the
// compacted STL for one campaign configuration, stored under the
// campaign's config hash (run.ConfigHash: netlists + PTP set + sim
// options) with a .sum checksum sidecar. Writes are crash-atomic
// (journal.WriteFileAtomic); reads verify the checksum every time and
// treat any mismatch — rot, torn write, injected corruption — as a
// miss, never as servable data. A corrupted entry therefore costs a
// re-simulation, not a wrong artifact.
type cache struct {
	dir string

	mHits    *obs.Counter // gpustl_server_cache_hits_total
	mMisses  *obs.Counter // gpustl_server_cache_misses_total
	mCorrupt *obs.Counter // gpustl_server_cache_corrupt_total
	logf     func(string, ...any)
}

func newCache(dir string, m *obs.Registry, logf func(string, ...any)) (*cache, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("server: cache dir: %w", err)
	}
	c := &cache{dir: dir, logf: logf}
	if m != nil {
		c.mHits = m.Counter("gpustl_server_cache_hits_total")
		c.mMisses = m.Counter("gpustl_server_cache_misses_total")
		c.mCorrupt = m.Counter("gpustl_server_cache_corrupt_total")
	}
	return c, nil
}

// path returns the artifact path for a cache key. Keys are hex config
// hashes, so they are filesystem-safe by construction.
func (c *cache) path(key string) string {
	return filepath.Join(c.dir, key+".stl.json")
}

// get returns the verified artifact bytes for key, or (nil, false) on
// a miss. Every read re-verifies the checksum sidecar: a missing
// sidecar or a mismatch is logged, counted on the corrupt metric, and
// reported as a miss so the caller re-simulates.
func (c *cache) get(key string) ([]byte, bool) {
	p := c.path(key)
	if err := journal.VerifyFileSum(p); err != nil {
		if errors.Is(err, journal.ErrNoSum) {
			if _, statErr := os.Stat(p); statErr != nil {
				// Neither artifact nor sidecar: a clean miss.
				c.mMisses.Inc()
				return nil, false
			}
			// Artifact without its sidecar: a crash landed between the
			// two writes, or the sidecar rotted away. Fall through to
			// the corrupt path — unverifiable bytes are never served.
		}
		// Anything else — checksum mismatch, missing sidecar, torn
		// entry — is a verified integrity failure. Quarantine the pair
		// so the subsequent Put does not have to fight stale bytes.
		c.mCorrupt.Inc()
		c.mMisses.Inc()
		if c.logf != nil {
			c.logf("cache: entry %s failed verification, treating as miss: %v", key, err)
		}
		os.Remove(p)
		os.Remove(journal.SumPath(p))
		return nil, false
	}
	b, err := os.ReadFile(p)
	if err != nil {
		c.mMisses.Inc()
		return nil, false
	}
	c.mHits.Inc()
	return b, true
}

// put stores the artifact bytes for key. The server.cache.corrupt
// failpoint corrupts the artifact as written, but the checksum sidecar
// is always computed from the clean bytes — so an injected corruption
// is exactly what a read-side verification must catch. Write order is
// artifact first, sidecar second: a crash between the two leaves an
// artifact without a sum, which get() treats as corrupt (a miss),
// never as data.
func (c *cache) put(key string, data []byte) error {
	stored, err := fpCacheCorrupt.InjectWrite(data)
	if err != nil {
		return fmt.Errorf("server: cache write: %w", err)
	}
	p := c.path(key)
	if err := journal.WriteFileAtomic(p, stored); err != nil {
		return fmt.Errorf("server: cache write %s: %w", key, err)
	}
	if err := journal.WriteSum(p, data); err != nil {
		return fmt.Errorf("server: cache sum %s: %w", key, err)
	}
	return nil
}

// errNotCached distinguishes "no such artifact" from I/O failures on
// the results endpoint.
var errNotCached = errors.New("server: artifact not in cache")
