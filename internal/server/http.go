package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"

	"gpustl/internal/obs"
)

// submitReq is the POST /api/v1/campaigns body.
type submitReq struct {
	ID   string `json:"id"`
	Spec Spec   `json:"spec"`
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

// readyzBody is the JSON body both the 200 and the 503 carry, so load
// balancers and humans see the same queue depth / in-flight / draining
// picture regardless of which side of ready the server is on.
type readyzBody struct {
	Server     string `json:"server"`
	Ready      bool   `json:"ready"`
	Draining   bool   `json:"draining"`
	QueueDepth int    `json:"queue_depth"`
	InFlight   int    `json:"in_flight"`
}

// Handler returns the control-plane HTTP API:
//
//	POST /api/v1/campaigns               submit {id, spec} (idempotent by id)
//	GET  /api/v1/campaigns               list campaigns
//	GET  /api/v1/campaigns/{id}          one campaign's state
//	POST /api/v1/campaigns/{id}/cancel   request cancellation
//	GET  /api/v1/campaigns/{id}/results  the verified compacted STL
//	GET  /v1/usage                       per-tenant usage accounting
//	GET  /livez                          process liveness (always 200)
//	GET  /readyz                         readiness + queue JSON (200/503)
//
// Saturation answers 429 with Retry-After; a draining or crashed
// server answers 503.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		if !s.storeReady(w) {
			return
		}
		writeJSON(w, http.StatusOK, s.List())
	})
	mux.HandleFunc("GET /api/v1/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !s.storeReady(w) {
			return
		}
		v, ok := s.Get(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no campaign %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("POST /api/v1/campaigns/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		if !s.storeReady(w) {
			return
		}
		v, err := s.Cancel(r.PathValue("id"))
		switch {
		case errors.Is(err, os.ErrNotExist):
			writeErr(w, http.StatusNotFound, fmt.Errorf("no campaign %q", r.PathValue("id")))
		case err != nil:
			writeErr(w, http.StatusInternalServerError, err)
		default:
			writeJSON(w, http.StatusOK, v)
		}
	})
	mux.HandleFunc("GET /api/v1/campaigns/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		if !s.storeReady(w) {
			return
		}
		b, err := s.Result(r.PathValue("id"))
		switch {
		case errors.Is(err, os.ErrNotExist):
			writeErr(w, http.StatusNotFound, fmt.Errorf("no campaign %q", r.PathValue("id")))
		case errors.Is(err, errNotCached):
			// The artifact exists in the journal's eyes but failed
			// verification (or vanished). 503, never corrupt bytes.
			writeErr(w, http.StatusServiceUnavailable, err)
		case err != nil:
			writeErr(w, http.StatusConflict, err)
		default:
			w.Header().Set("Content-Type", "application/json")
			w.Write(b)
		}
	})
	mux.HandleFunc("GET /v1/usage", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.opt.Usage.WriteJSON(w); err != nil {
			s.opt.logf("server: writing usage response: %v", err)
		}
	})
	mux.HandleFunc("GET /livez", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"alive": true})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		queued, inflight := s.Depth()
		body := readyzBody{
			Server:     s.opt.Holder,
			Ready:      s.Ready(),
			Draining:   s.Draining(),
			QueueDepth: queued,
			InFlight:   inflight,
		}
		status := http.StatusOK
		if !body.Ready {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, body)
	})
	if m := s.opt.Metrics; m != nil {
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			m.WritePrometheus(w)
		})
	}
	return mux
}

// storeReady 503s requests that arrive before the journal is replayed
// or after a crash — the in-memory state is absent or untrustworthy.
func (s *Server) storeReady(w http.ResponseWriter) bool {
	if s.q == nil || s.killed.Load() {
		writeErr(w, http.StatusServiceUnavailable, ErrNotAccepting)
		return false
	}
	return true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.storeReady(w) {
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxSpecBytes+4096))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var req submitReq
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding submit body: %w", err))
		return
	}
	// Trace context rides the submit: the campaign's execution span (on
	// this server or a crash successor) becomes a child of the client's
	// span. A garbled header is dropped at execution time, never fatal.
	v, err := s.SubmitTrace(req.ID, &req.Spec, r.Header.Get(obs.TraceHeader))
	switch {
	case errors.Is(err, ErrOverQuota):
		// Retry-After is the lease TTL rounded up: by then either a
		// campaign finished or the tenant should back off harder.
		w.Header().Set("Retry-After", strconv.Itoa(int(s.opt.LeaseTTL.Seconds())+1))
		writeErr(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrSpecConflict):
		writeErr(w, http.StatusConflict, err)
	case errors.Is(err, ErrNotAccepting):
		writeErr(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, v)
	}
}
