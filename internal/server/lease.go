package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gpustl/internal/journal"
)

// The state-dir lease. journal.Journal is single-writer, so two
// servers pointed at the same state directory must not both append to
// queue.wal. The LOCK file is the arbiter: a JSON {holder, expiry}
// written with O_CREATE|O_EXCL on acquisition and renewed (atomically
// rewritten) every heartbeat. Liveness is judged only by expiry —
// there is no "is the process alive" check, because a crash-only
// design must treat a wedged process and a dead one identically:
//
//   - clean shutdown removes LOCK → a successor acquires instantly;
//   - a crash leaves LOCK behind → a successor waits out the expiry,
//     then breaks the lock and adopts everything via journal replay.
//
// Holder names must be unique per server instance (the daemon appends
// its pid); a holder that reads back its own name treats the lock as
// its own, which makes restart-after-crash with the same name safe.

const lockFile = "LOCK"

// dirLease is the on-disk LOCK schema.
type dirLease struct {
	Holder string `json:"holder"`
	// Expiry is absolute unix nanoseconds; a peer's clock judges it,
	// so LeaseTTL must dwarf plausible clock skew between servers
	// sharing a state dir (they normally share a machine too).
	Expiry int64 `json:"expiry"`
}

// errLockHeld reports an unexpired lock owned by someone else.
var errLockHeld = errors.New("server: state dir is locked by a live holder")

func lockPath(dir string) string { return filepath.Join(dir, lockFile) }

// readLock returns the current LOCK contents, or nil if absent. A
// malformed LOCK (torn write by a dying writer) is treated as absent —
// the atomically-written rename path makes that near-impossible, and
// refusing to start over an unreadable lock would turn one crash into
// a permanent outage.
func readLock(dir string) *dirLease {
	b, err := os.ReadFile(lockPath(dir))
	if err != nil {
		return nil
	}
	var l dirLease
	if json.Unmarshal(b, &l) != nil || l.Holder == "" {
		return nil
	}
	return &l
}

// acquireLock takes the state-dir lease for holder, valid until
// expiry. It succeeds when no LOCK exists, when the existing lock has
// expired, or when the existing lock already names this holder (a
// restart after a crash, before the old lease ran out). Otherwise it
// returns errLockHeld with the current holder and remaining time.
func acquireLock(dir, holder string, expiry time.Time) error {
	cur := readLock(dir)
	now := time.Now()
	if cur != nil && cur.Holder != holder && cur.Expiry > now.UnixNano() {
		return fmt.Errorf("%w: %s for another %s", errLockHeld, cur.Holder,
			time.Duration(cur.Expiry-now.UnixNano()).Round(time.Millisecond))
	}
	if cur != nil {
		// Expired or our own: break it, then race for the exclusive
		// create below. The loser of the race sees errLockHeld-shaped
		// os.ErrExist and retries on its next poll.
		if err := os.Remove(lockPath(dir)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("server: breaking expired lock: %w", err)
		}
	}
	b, err := json.Marshal(dirLease{Holder: holder, Expiry: expiry.UnixNano()})
	if err != nil {
		return err
	}
	f, err := os.OpenFile(lockPath(dir), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o666)
	if err != nil {
		if os.IsExist(err) {
			return fmt.Errorf("%w: lost acquisition race", errLockHeld)
		}
		return fmt.Errorf("server: creating lock: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return fmt.Errorf("server: writing lock: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("server: syncing lock: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	return journal.SyncDir(dir)
}

// renewLock extends this holder's lease. It refuses — with an error
// the caller must treat as lease loss — if the LOCK no longer names
// this holder (a peer judged us dead and took over while we were
// stalled). The server.lease.expire failpoint simulates exactly that
// stall: the renewal is skipped, so the lease runs out for real.
func renewLock(dir, holder string, expiry time.Time) error {
	if err := fpLeaseExpire.Inject(); err != nil {
		return fmt.Errorf("server: lease renewal suppressed: %w", err)
	}
	cur := readLock(dir)
	if cur == nil || cur.Holder != holder {
		who := "nobody"
		if cur != nil {
			who = cur.Holder
		}
		return fmt.Errorf("server: lease lost: lock now held by %s", who)
	}
	b, err := json.Marshal(dirLease{Holder: holder, Expiry: expiry.UnixNano()})
	if err != nil {
		return err
	}
	return journal.WriteFileAtomic(lockPath(dir), b)
}

// releaseLock removes the LOCK iff this holder still owns it — the
// clean-shutdown path that lets a successor start without waiting out
// the lease.
func releaseLock(dir, holder string) {
	cur := readLock(dir)
	if cur == nil || cur.Holder != holder {
		return
	}
	os.Remove(lockPath(dir))
	journal.SyncDir(dir)
}
