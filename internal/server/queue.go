package server

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"gpustl/internal/failpoint"
	"gpustl/internal/journal"
)

// Failpoints for the control plane. server.journal.append fails the
// queue-journal append path — the server treats that as fail-stop (it
// crashes rather than run with an un-journaled transition), which is
// exactly what the chaos harness wants: a kill at a journaled cut
// point. server.lease.expire makes a heartbeat renewal "miss" so the
// owner must detach its executor and a peer can adopt the campaign.
// server.cache.corrupt flips bytes in a result-cache artifact as it is
// written, proving the read-side checksum verification refuses to
// serve rot.
var (
	fpJournalAppend = failpoint.New("server.journal.append")
	fpLeaseExpire   = failpoint.New("server.lease.expire")
	fpCacheCorrupt  = failpoint.New("server.cache.corrupt")
)

// State is a campaign's position in its lifecycle. Transitions are
// journaled before they are visible:
//
//	queued → leased → running → done | failed | canceled
//	          └────────┴─→ queued (requeue: lease lost / server died)
type State string

const (
	StateQueued   State = "queued"
	StateLeased   State = "leased"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether s is an end state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Queue-journal record types. One record per state transition; replay
// folds them, last writer wins, terminal states stick.
const (
	recSubmit    = "submit"    // campaign accepted: id, tenant, spec
	recLease     = "lease"     // ownership claimed/renewed: id, holder, expiry
	recRunning   = "running"   // executor started simulating
	recRequeue   = "requeue"   // ownership released un-finished: back to queued
	recDone      = "done"      // artifact durably cached
	recFailed    = "failed"    // campaign failed for good
	recCancelReq = "cancelreq" // client asked for cancellation
	recCanceled  = "canceled"  // cancellation took effect
)

// queueRec is the body of every queue-journal record. Unused fields
// stay empty per type; one schema keeps replay simple and the journal
// greppable.
type queueRec struct {
	ID     string          `json:"id"`
	Tenant string          `json:"tenant,omitempty"`
	Spec   json.RawMessage `json:"spec,omitempty"`
	Holder string          `json:"holder,omitempty"`
	// Expiry is an absolute unix-nanosecond lease deadline. Absolute,
	// not a TTL: a successor replaying the journal after a crash must
	// be able to judge expiry against its own clock.
	Expiry    int64  `json:"expiry,omitempty"`
	CacheKey  string `json:"cacheKey,omitempty"`
	FromCache bool   `json:"fromCache,omitempty"`
	Reason    string `json:"reason,omitempty"`
	Error     string `json:"error,omitempty"`
	// Trace is the submitting client's trace context (X-Gpustl-Trace
	// wire format), journaled with the submit record so a campaign
	// resumed by a successor server still lands in the original trace.
	Trace string `json:"trace,omitempty"`
}

// Campaign is the journaled state of one campaign plus the owning
// server's runtime handle on it. All fields are guarded by the queue
// mutex.
type Campaign struct {
	ID      string
	Tenant  string
	SpecRaw json.RawMessage
	// SubmitSeq is the journal sequence of the submit record — the
	// FIFO tie-break inside a tenant.
	SubmitSeq uint64
	State     State
	Holder    string
	Expiry    int64
	CancelReq bool
	CacheKey  string
	FromCache bool
	Error     string
	Requeues  int
	// Trace is the submit-time trace context (wire format, may be "").
	Trace string

	// submitted is when this server learned of the campaign (live
	// submit or journal replay) — the queue-wait span's start. Runtime
	// only, never journaled: queue-wait after a restart measures from
	// the restart, which is when waiting under this server began.
	submitted time.Time

	// detach cancels the owning executor with a cause. Non-nil only on
	// the server currently running the campaign; never journaled.
	detach func(error)
}

// CampaignView is the JSON shape of a campaign in API responses.
type CampaignView struct {
	ID        string `json:"id"`
	Tenant    string `json:"tenant"`
	State     State  `json:"state"`
	Holder    string `json:"holder,omitempty"`
	CancelReq bool   `json:"cancelRequested,omitempty"`
	CacheKey  string `json:"cacheKey,omitempty"`
	FromCache bool   `json:"fromCache,omitempty"`
	Error     string `json:"error,omitempty"`
	Requeues  int    `json:"requeues,omitempty"`
}

func (c *Campaign) view() CampaignView {
	return CampaignView{
		ID: c.ID, Tenant: c.Tenant, State: c.State, Holder: c.Holder,
		CancelReq: c.CancelReq, CacheKey: c.CacheKey, FromCache: c.FromCache,
		Error: c.Error, Requeues: c.Requeues,
	}
}

// queue is the durable campaign queue: an append-only journal of state
// transitions plus the in-memory fold of it. Writes go journal-first —
// a transition that is not durably appended never becomes visible, so
// a crash at any instant leaves a state the next replay reconstructs
// exactly.
type queue struct {
	mu    sync.Mutex
	j     *journal.Journal
	camps map[string]*Campaign
}

// openQueue opens (or creates) the queue journal in dir and folds its
// records back into campaign state. Campaigns that were leased or
// running when the previous owner died come back as their journaled
// state — adoption (requeue or re-lease) is the caller's decision,
// made against lease expiry.
func openQueue(path string) (*queue, *journal.Replay, error) {
	j, rp, err := journal.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("server: opening queue journal: %w", err)
	}
	q := &queue{j: j, camps: make(map[string]*Campaign)}
	for _, rec := range rp.Records {
		if err := q.apply(rec.Seq, rec.Type, rec.Body); err != nil {
			j.Close()
			return nil, nil, fmt.Errorf("server: replaying queue journal seq %d: %w", rec.Seq, err)
		}
	}
	return q, rp, nil
}

// apply folds one journal record into the in-memory state. It is the
// single transition function used by both replay and live appends, so
// a recovered server and the server that wrote the records agree by
// construction.
func (q *queue) apply(seq uint64, typ string, body json.RawMessage) error {
	var r queueRec
	if err := json.Unmarshal(body, &r); err != nil {
		return fmt.Errorf("decoding %s record: %w", typ, err)
	}
	if r.ID == "" {
		return fmt.Errorf("%s record without campaign id", typ)
	}
	c := q.camps[r.ID]
	if typ == recSubmit {
		if c != nil {
			// Duplicate submit records can exist if a crash landed
			// between append and the HTTP reply; the first one wins.
			return nil
		}
		q.camps[r.ID] = &Campaign{
			ID: r.ID, Tenant: r.Tenant, SpecRaw: r.Spec,
			SubmitSeq: seq, State: StateQueued,
			Trace: r.Trace, submitted: time.Now(),
		}
		return nil
	}
	if c == nil {
		return fmt.Errorf("%s record for unknown campaign %q", typ, r.ID)
	}
	if c.State.Terminal() {
		// Terminal states stick: a straggling lease/requeue appended by
		// a dying peer after completion must not resurrect the campaign.
		return nil
	}
	switch typ {
	case recLease:
		// A lease on a queued campaign claims it; a lease on a running
		// one is a heartbeat renewal and must not demote the state.
		if c.State == StateQueued {
			c.State = StateLeased
		}
		c.Holder = r.Holder
		c.Expiry = r.Expiry
	case recRunning:
		c.State = StateRunning
		c.Holder = r.Holder
		if r.Expiry != 0 {
			c.Expiry = r.Expiry
		}
	case recRequeue:
		c.State = StateQueued
		c.Holder = ""
		c.Expiry = 0
		c.Requeues++
	case recDone:
		c.State = StateDone
		c.CacheKey = r.CacheKey
		c.FromCache = r.FromCache
		c.Holder = ""
		c.detach = nil
	case recFailed:
		c.State = StateFailed
		c.Error = r.Error
		c.Holder = ""
		c.detach = nil
	case recCancelReq:
		c.CancelReq = true
	case recCanceled:
		c.State = StateCanceled
		c.Error = r.Error
		c.Holder = ""
		c.detach = nil
	default:
		return fmt.Errorf("unknown record type %q", typ)
	}
	return nil
}

// append journals one transition and folds it into memory. Any append
// failure — injected via server.journal.append or real — is returned
// to the caller, and the server treats it as fail-stop: it must crash
// rather than keep running with an un-journaled transition the next
// replay would not know about.
func (q *queue) append(typ string, r queueRec) error {
	if err := fpJournalAppend.Inject(); err != nil {
		return fmt.Errorf("server: queue journal append %s(%s): %w", typ, r.ID, err)
	}
	body, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("server: encoding %s record: %w", typ, err)
	}
	seq, err := q.j.Append(typ, json.RawMessage(body))
	if err != nil {
		return fmt.Errorf("server: queue journal append %s(%s): %w", typ, r.ID, err)
	}
	return q.apply(seq, typ, body)
}

func (q *queue) close() error { return q.j.Close() }

// get returns the campaign with the given id, or nil.
func (q *queue) get(id string) *Campaign {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.camps[id]
}

// list returns campaign views sorted by submit order.
func (q *queue) list() []CampaignView {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]CampaignView, 0, len(q.camps))
	ids := make([]*Campaign, 0, len(q.camps))
	for _, c := range q.camps {
		ids = append(ids, c)
	}
	sort.Slice(ids, func(i, k int) bool { return ids[i].SubmitSeq < ids[k].SubmitSeq })
	for _, c := range ids {
		out = append(out, c.view())
	}
	return out
}

// depth counts campaigns waiting to run (queued) and in flight
// (leased/running); used by /readyz and the queue-depth gauge.
func (q *queue) depth() (queued, inflight int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depthLocked()
}

// depthLocked is depth for callers already holding q.mu.
func (q *queue) depthLocked() (queued, inflight int) {
	for _, c := range q.camps {
		switch c.State {
		case StateQueued:
			queued++
		case StateLeased, StateRunning:
			inflight++
		}
	}
	return
}
