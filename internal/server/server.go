package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"sync/atomic"
	"time"

	"gpustl/internal/core"
	"gpustl/internal/journal"
	"gpustl/internal/obs"
	"gpustl/internal/overload"
	"gpustl/internal/run"
	"gpustl/internal/stl"
)

// Options configures a Server.
type Options struct {
	// StateDir is the server's durable root: queue.wal, LOCK,
	// campaigns/<id>/ run journals, cache/ artifacts.
	StateDir string
	// Holder uniquely names this server instance in leases. The daemon
	// appends its pid; tests pick explicit names.
	Holder string
	// MaxActive bounds concurrently executing campaigns (default 2).
	MaxActive int
	// TenantQuota bounds one tenant's live (non-terminal) campaigns;
	// a submit over quota is refused with 429/Retry-After (default 8).
	TenantQuota int64
	// TenantRetryRatio/TenantRetryBurst parameterize each tenant's
	// retry budget, which bounds automatic re-execution of that
	// tenant's transiently failed campaigns (defaults 0.2, 5).
	TenantRetryRatio float64
	TenantRetryBurst int
	// HeartbeatEvery is the lease renewal period (default 1s);
	// LeaseTTL is how long a lease outlives its last renewal (default
	// 3× heartbeat). A dead server is adopted after at most LeaseTTL.
	HeartbeatEvery time.Duration
	LeaseTTL       time.Duration
	// DrainGrace bounds how long a graceful shutdown waits for
	// in-flight campaigns before checkpoint-canceling them (default 30s).
	DrainGrace time.Duration
	// SimWorkers is the per-campaign fault-simulation parallelism
	// (default 4). StageTimeout, when set, arms run's per-stage
	// watchdog.
	SimWorkers   int
	StageTimeout time.Duration
	// Fleet, when set, is called once per campaign execution to build
	// the fault simulator (typically a dist.Coordinator over shared
	// transports). Nil runs campaigns with the in-process simulator.
	Fleet func() (core.FaultSimulator, error)
	// Metrics receives gpustl_server_* series; Tracer records campaign
	// spans; Usage meters per-tenant consumption (fault-blocks,
	// worker-seconds, cache hits, journal bytes) for GET /v1/usage;
	// Logf gets operational notes. All nil-safe.
	Metrics *obs.Registry
	Tracer  *obs.Tracer
	Usage   *obs.UsageMeter
	Logf    func(format string, args ...any)
}

func (o *Options) withDefaults() Options {
	d := *o
	if d.Holder == "" {
		d.Holder = "stlserver"
	}
	if d.MaxActive <= 0 {
		d.MaxActive = 2
	}
	if d.TenantQuota <= 0 {
		d.TenantQuota = 8
	}
	if d.TenantRetryRatio <= 0 {
		d.TenantRetryRatio = 0.2
	}
	if d.TenantRetryBurst <= 0 {
		d.TenantRetryBurst = 5
	}
	if d.HeartbeatEvery <= 0 {
		d.HeartbeatEvery = time.Second
	}
	if d.LeaseTTL <= 0 {
		d.LeaseTTL = 3 * d.HeartbeatEvery
	}
	if d.DrainGrace <= 0 {
		d.DrainGrace = 30 * time.Second
	}
	if d.SimWorkers <= 0 {
		d.SimWorkers = 4
	}
	return d
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Cancellation causes, surfaced via context.Cause so an aborted
// campaign reports why it stopped instead of a bare context.Canceled.
var (
	errCanceledByClient = errors.New("canceled by client request")
	errDraining         = errors.New("server draining for shutdown")
	errKilled           = errors.New("server killed")
	errLeaseLost        = errors.New("server lease lost")
)

// tenantCtl is one tenant's quota pool and retry budget.
type tenantCtl struct {
	adm *overload.Admission
	rb  *overload.RetryBudget
}

// Server is the crash-only campaign control plane. Construct with New,
// drive with Run, submit work through the HTTP handler (Handler) or
// the Submit/Cancel methods directly.
type Server struct {
	opt   Options
	q     *queue
	cache *cache

	ready    atomic.Bool
	draining atomic.Bool
	// killed marks the hard-stop (crash) path: once set, nothing is
	// appended to the queue journal again — exactly as if the process
	// had died — so the successor's replay sees only what was durable.
	killed atomic.Bool

	// ictx governs every executor. It is deliberately NOT a child of
	// Run's ctx: a graceful drain lets executors outlive ctx by up to
	// DrainGrace before icancel fires.
	ictx    context.Context
	icancel context.CancelCauseFunc

	crashMu  sync.Mutex
	crashErr error

	tenantMu sync.Mutex
	tenants  map[string]*tenantCtl

	wake chan struct{}
	wg   sync.WaitGroup

	// releases maps campaign id → tenant-quota release func. Runtime
	// only; rebuilt on restart from the replayed non-terminal set.
	relMu    sync.Mutex
	releases map[string]func()

	mSubmitted *obs.Counter
	mDone      *obs.Counter
	mFailed    *obs.Counter
	mCanceled  *obs.Counter
	mRequeued  *obs.Counter
	mAdopted   *obs.Counter
	mRenewals  *obs.Counter
	mLeaseLost *obs.Counter
	mRejected  *obs.Counter
	gQueue     *obs.Gauge
	gRunning   *obs.Gauge
	hCampaign  *obs.Histogram
}

// New creates a Server over opts.StateDir. Nothing is opened or locked
// until Run.
func New(opts Options) *Server {
	o := opts.withDefaults()
	s := &Server{
		opt:      o,
		tenants:  make(map[string]*tenantCtl),
		wake:     make(chan struct{}, 1),
		releases: make(map[string]func()),
	}
	s.ictx, s.icancel = context.WithCancelCause(context.Background())
	if m := o.Metrics; m != nil {
		s.mSubmitted = m.Counter("gpustl_server_campaigns_submitted_total")
		s.mDone = m.Counter("gpustl_server_campaigns_done_total")
		s.mFailed = m.Counter("gpustl_server_campaigns_failed_total")
		s.mCanceled = m.Counter("gpustl_server_campaigns_canceled_total")
		s.mRequeued = m.Counter("gpustl_server_campaigns_requeued_total")
		s.mAdopted = m.Counter("gpustl_server_campaigns_adopted_total")
		s.mRenewals = m.Counter("gpustl_server_lease_renewals_total")
		s.mLeaseLost = m.Counter("gpustl_server_lease_lost_total")
		s.mRejected = m.Counter("gpustl_server_submit_rejected_total")
		s.gQueue = m.Gauge("gpustl_server_queue_depth")
		s.gRunning = m.Gauge("gpustl_server_campaigns_running")
		s.hCampaign = m.Histogram("gpustl_server_campaign_seconds", obs.DefLatencyBuckets())
	}
	return s
}

func (s *Server) tenant(name string) *tenantCtl {
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	t := s.tenants[name]
	if t == nil {
		t = &tenantCtl{
			adm: overload.NewAdmission(overload.AdmissionOptions{
				Capacity: s.opt.TenantQuota,
				Metrics:  s.opt.Metrics,
				Name:     "tenant_" + name,
			}),
			rb: overload.NewRetryBudget(s.opt.TenantRetryRatio, s.opt.TenantRetryBurst, s.opt.Metrics),
		}
		s.tenants[name] = t
	}
	return t
}

// crash is the fail-stop path: a journal append failed, the lease was
// lost, or Kill was called. The server stops writing immediately (a
// transition it cannot journal must not happen), cancels every
// executor with the cause, and lets Run return the error. The LOCK
// stays behind, exactly like a real SIGKILL — the successor waits out
// the lease and adopts by replay.
func (s *Server) crash(err error) {
	if s.killed.Swap(true) {
		return
	}
	s.crashMu.Lock()
	s.crashErr = err
	s.crashMu.Unlock()
	s.ready.Store(false)
	s.opt.logf("server %s: fail-stop: %v", s.opt.Holder, err)
	s.icancel(err)
}

// Kill hard-stops the server as if the process received SIGKILL: no
// drain, no terminal records, no lock release. Chaos schedules and the
// takeover tests use it to die at arbitrary instants.
func (s *Server) Kill() { s.crash(errKilled) }

// Ready reports whether the server is accepting work. Draining reports
// a graceful shutdown in progress. Depth returns (queued, in-flight).
func (s *Server) Ready() bool    { return s.ready.Load() }
func (s *Server) Draining() bool { return s.draining.Load() }
func (s *Server) Depth() (queued, inflight int) {
	if s.q == nil {
		return 0, 0
	}
	return s.q.depth()
}

// Holder returns this server's lease identity.
func (s *Server) Holder() string { return s.opt.Holder }

func (s *Server) updateGauges() {
	queued, inflight := s.Depth()
	s.gQueue.Set(float64(queued))
	s.gRunning.Set(float64(inflight))
}

// updateGaugesLocked is updateGauges for callers already holding q.mu.
func (s *Server) updateGaugesLocked() {
	queued, inflight := s.q.depthLocked()
	s.gQueue.Set(float64(queued))
	s.gRunning.Set(float64(inflight))
}

func (s *Server) queuePath() string { return filepath.Join(s.opt.StateDir, "queue.wal") }
func (s *Server) cacheDir() string  { return filepath.Join(s.opt.StateDir, "cache") }
func (s *Server) runDir(id string) string {
	return filepath.Join(s.opt.StateDir, "campaigns", id)
}

// Run acquires the state-dir lease (blocking, polling each heartbeat,
// until it is free or ctx dies), replays the queue journal, adopts
// orphaned campaigns, and serves until ctx is canceled (graceful
// drain) or a fail-stop crash. It returns nil after a clean drain and
// the crash cause otherwise.
func (s *Server) Run(ctx context.Context) error {
	o := &s.opt
	if err := os.MkdirAll(o.StateDir, 0o777); err != nil {
		return fmt.Errorf("server: state dir: %w", err)
	}
	// Take the state-dir lease. A held lock means a peer is alive (or
	// recently died); poll until its lease expires.
	for {
		err := acquireLock(o.StateDir, o.Holder, time.Now().Add(o.LeaseTTL))
		if err == nil {
			break
		}
		if !errors.Is(err, errLockHeld) {
			return err
		}
		select {
		case <-ctx.Done():
			return context.Cause(ctx)
		case <-s.ictx.Done():
			return context.Cause(s.ictx)
		case <-time.After(o.HeartbeatEvery):
		}
	}
	q, rp, err := openQueue(s.queuePath())
	if err != nil {
		releaseLock(o.StateDir, o.Holder)
		return err
	}
	s.q = q
	if rp.Truncated {
		o.logf("server %s: queue journal salvaged: dropped %d bytes (%s: %s)",
			o.Holder, rp.TotalSize-rp.GoodSize, rp.Kind, rp.Reason)
	}
	c, err := newCache(s.cacheDir(), o.Metrics, o.Logf)
	if err != nil {
		q.close()
		releaseLock(o.StateDir, o.Holder)
		return err
	}
	s.cache = c
	if err := s.adoptOrphans(); err != nil {
		s.q.close()
		return err
	}
	s.rebuildTenantQuotas()
	s.updateGauges()
	s.ready.Store(true)
	o.logf("server %s: ready (%d campaigns replayed)", o.Holder, len(q.camps))

	hbDone := make(chan struct{})
	go s.heartbeat(hbDone)

	s.schedule(ctx)

	// Scheduler exited: either a graceful drain (ctx done) or a crash.
	err = s.shutdown(ctx)
	close(hbDone)
	return err
}

// adoptOrphans requeues every replayed campaign that was leased or
// running when its previous owner stopped. We hold the state-dir lease,
// so that owner is dead (or is our own previous incarnation); its
// campaigns resume from their run WALs once re-executed — no finished
// PTP runs twice.
func (s *Server) adoptOrphans() error {
	s.q.mu.Lock()
	defer s.q.mu.Unlock()
	for _, c := range s.q.camps {
		if c.State != StateLeased && c.State != StateRunning {
			continue
		}
		prev := c.Holder
		if err := s.q.append(recRequeue, queueRec{ID: c.ID, Reason: "adopted from " + prev}); err != nil {
			return err
		}
		s.mAdopted.Inc()
		s.opt.logf("server %s: adopted campaign %s (was %s on %s)", s.opt.Holder, c.ID, StateRunning, prev)
	}
	return nil
}

// rebuildTenantQuotas re-acquires quota slots for every live campaign
// that survived the restart, so a tenant's quota keeps counting work
// the previous incarnation accepted.
func (s *Server) rebuildTenantQuotas() {
	s.q.mu.Lock()
	defer s.q.mu.Unlock()
	for _, c := range s.q.camps {
		if c.State.Terminal() {
			continue
		}
		if rel, ok := s.tenant(c.Tenant).adm.TryAcquire(1); ok {
			s.setRelease(c.ID, rel)
		} else {
			// Quota was lowered below the replayed backlog. Run the
			// backlog anyway — refusing journaled work would strand it
			// — but log the overshoot.
			s.opt.logf("server %s: tenant %s over quota after replay (campaign %s)", s.opt.Holder, c.Tenant, c.ID)
		}
	}
}

func (s *Server) setRelease(id string, rel func()) {
	s.relMu.Lock()
	s.releases[id] = rel
	s.relMu.Unlock()
}

// releaseQuota frees the tenant-quota slot a campaign held; idempotent.
func (s *Server) releaseQuota(id string) {
	s.relMu.Lock()
	rel := s.releases[id]
	delete(s.releases, id)
	s.relMu.Unlock()
	if rel != nil {
		rel()
	}
}

// heartbeat renews the state-dir lease and the per-campaign leases of
// everything this server is running. Any renewal failure — the LOCK
// naming someone else, or the server.lease.expire failpoint suppressing
// the write — is lease loss, and lease loss is fail-stop: a server that
// cannot prove it still owns the state dir must stop writing to it
// before a successor starts.
func (s *Server) heartbeat(done <-chan struct{}) {
	t := time.NewTicker(s.opt.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-s.ictx.Done():
			return
		case <-t.C:
		}
		if s.killed.Load() {
			return
		}
		expiry := time.Now().Add(s.opt.LeaseTTL)
		if err := renewLock(s.opt.StateDir, s.opt.Holder, expiry); err != nil {
			s.mLeaseLost.Inc()
			s.crash(fmt.Errorf("%w: %v", errLeaseLost, err))
			return
		}
		s.mRenewals.Inc()
		if err := s.renewCampaignLeases(expiry); err != nil {
			s.crash(err)
			return
		}
		s.updateGauges()
	}
}

// renewCampaignLeases journals a fresh expiry for every campaign this
// server holds, so a peer replaying the journal can judge orphan-hood
// against absolute time even if the LOCK file were lost.
func (s *Server) renewCampaignLeases(expiry time.Time) error {
	s.q.mu.Lock()
	defer s.q.mu.Unlock()
	for _, c := range s.q.camps {
		if c.Holder != s.opt.Holder || c.State.Terminal() || c.State == StateQueued {
			continue
		}
		if err := s.q.append(recLease, queueRec{ID: c.ID, Holder: s.opt.Holder, Expiry: expiry.UnixNano()}); err != nil {
			return err
		}
	}
	return nil
}

// schedule is the fair-share dispatch loop: while capacity remains,
// lease the next campaign of the tenant with the fewest in-flight
// campaigns (FIFO inside a tenant), journal the lease, and hand it to
// an executor. Runs until ctx (drain) or ictx (crash) dies.
func (s *Server) schedule(ctx context.Context) {
	t := time.NewTicker(s.opt.HeartbeatEvery)
	defer t.Stop()
	for {
		s.dispatch()
		select {
		case <-ctx.Done():
			return
		case <-s.ictx.Done():
			return
		case <-s.wake:
		case <-t.C:
		}
	}
}

func (s *Server) poke() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// dispatch leases as many queued campaigns as capacity allows.
func (s *Server) dispatch() {
	s.q.mu.Lock()
	defer s.q.mu.Unlock()
	for {
		if s.killed.Load() || s.draining.Load() {
			return
		}
		active := 0
		inflight := map[string]int{} // tenant → leased+running
		for _, c := range s.q.camps {
			if c.State == StateLeased || c.State == StateRunning {
				active++
				inflight[c.Tenant]++
			}
		}
		if active >= s.opt.MaxActive {
			return
		}
		// Fair share: among tenants with queued work, pick the one with
		// the least in flight; inside it, the oldest submission.
		var pick *Campaign
		for _, c := range s.q.camps {
			if c.State != StateQueued {
				continue
			}
			if pick == nil {
				pick = c
				continue
			}
			pi, ci := inflight[pick.Tenant], inflight[c.Tenant]
			if ci < pi || (ci == pi && c.SubmitSeq < pick.SubmitSeq) {
				pick = c
			}
		}
		if pick == nil {
			return
		}
		expiry := time.Now().Add(s.opt.LeaseTTL)
		if err := s.q.append(recLease, queueRec{ID: pick.ID, Holder: s.opt.Holder, Expiry: expiry.UnixNano()}); err != nil {
			s.q.mu.Unlock()
			s.crash(err)
			s.q.mu.Lock()
			return
		}
		s.wg.Add(1)
		go s.execute(pick.ID)
	}
}

// shutdown finishes Run: on a crash it only reaps executors and closes
// the journal (no lock release, no extra records — the process is
// "dead"); on a graceful drain it stops intake, gives executors
// DrainGrace to finish, checkpoint-cancels the stragglers (their
// requeue records make the next server resume them), and releases the
// lock so a successor starts instantly.
func (s *Server) shutdown(ctx context.Context) error {
	if s.killed.Load() {
		s.wg.Wait()
		s.q.close()
		s.crashMu.Lock()
		defer s.crashMu.Unlock()
		return s.crashErr
	}
	// Graceful drain (ctx canceled).
	s.draining.Store(true)
	s.ready.Store(false)
	s.opt.logf("server %s: draining (grace %s)", s.opt.Holder, s.opt.DrainGrace)
	finished := make(chan struct{})
	go func() { s.wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(s.opt.DrainGrace):
		s.opt.logf("server %s: drain grace expired, checkpoint-canceling in-flight campaigns", s.opt.Holder)
		s.icancel(errDraining)
		<-finished
	}
	s.q.close()
	releaseLock(s.opt.StateDir, s.opt.Holder)
	s.opt.logf("server %s: drained", s.opt.Holder)
	return nil
}

// idOK validates client-supplied campaign ids: they become directory
// names under StateDir/campaigns, so only a conservative charset is
// accepted.
var idOK = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// Submission errors surfaced to the HTTP layer.
var (
	// ErrOverQuota maps to 429 + Retry-After.
	ErrOverQuota = errors.New("server: tenant over campaign quota")
	// ErrSpecConflict maps to 409: same id, different spec.
	ErrSpecConflict = errors.New("server: campaign id exists with a different spec")
	// ErrNotAccepting maps to 503: draining or not yet ready.
	ErrNotAccepting = errors.New("server: not accepting campaigns")
)

// Submit accepts (or idempotently re-accepts) a campaign. The same id
// with a byte-identical canonical spec returns the existing campaign —
// the retry-after-crash contract a client needs when its first submit's
// reply was lost. The same id with a different spec is ErrSpecConflict.
func (s *Server) Submit(id string, sp *Spec) (CampaignView, error) {
	return s.SubmitTrace(id, sp, "")
}

// SubmitTrace is Submit carrying the client's trace context (the
// X-Gpustl-Trace wire format, or ""). The trace is journaled with the
// submit record, so the campaign's execution span — on this server or
// on a successor that adopts the campaign after a crash — is a child
// of the submitting client's span.
func (s *Server) SubmitTrace(id string, sp *Spec, trace string) (CampaignView, error) {
	if !s.ready.Load() || s.draining.Load() {
		return CampaignView{}, ErrNotAccepting
	}
	if !idOK.MatchString(id) || id == "." || id == ".." {
		return CampaignView{}, fmt.Errorf("server: invalid campaign id %q", id)
	}
	if err := sp.Validate(); err != nil {
		return CampaignView{}, err
	}
	canon, err := json.Marshal(sp)
	if err != nil {
		return CampaignView{}, err
	}
	tname := sp.tenant()
	t := s.tenant(tname)
	t.rb.OnRequest()
	s.q.mu.Lock()
	defer s.q.mu.Unlock()
	if c := s.q.camps[id]; c != nil {
		if bytes.Equal(c.SpecRaw, canon) {
			return c.view(), nil
		}
		return CampaignView{}, ErrSpecConflict
	}
	rel, ok := t.adm.TryAcquire(1)
	if !ok {
		s.mRejected.Inc()
		return CampaignView{}, fmt.Errorf("%w (tenant %s)", ErrOverQuota, tname)
	}
	if err := s.q.append(recSubmit, queueRec{ID: id, Tenant: tname, Spec: canon, Trace: trace}); err != nil {
		rel()
		s.q.mu.Unlock()
		s.crash(err)
		s.q.mu.Lock()
		return CampaignView{}, err
	}
	s.setRelease(id, rel)
	s.mSubmitted.Inc()
	s.updateGaugesLocked()
	s.poke()
	return s.q.camps[id].view(), nil
}

// Cancel requests cancellation of a campaign. Queued campaigns cancel
// immediately; running ones get their executor canceled with an
// explicit cause and journal the terminal record themselves.
func (s *Server) Cancel(id string) (CampaignView, error) {
	s.q.mu.Lock()
	defer s.q.mu.Unlock()
	c := s.q.camps[id]
	if c == nil {
		return CampaignView{}, os.ErrNotExist
	}
	if c.State.Terminal() || c.CancelReq {
		return c.view(), nil
	}
	if err := s.q.append(recCancelReq, queueRec{ID: id}); err != nil {
		s.q.mu.Unlock()
		s.crash(err)
		s.q.mu.Lock()
		return CampaignView{}, err
	}
	if c.State == StateQueued {
		if err := s.q.append(recCanceled, queueRec{ID: id, Error: errCanceledByClient.Error()}); err != nil {
			s.q.mu.Unlock()
			s.crash(err)
			s.q.mu.Lock()
			return CampaignView{}, err
		}
		s.mCanceled.Inc()
		s.releaseQuota(id)
	} else if c.detach != nil {
		c.detach(errCanceledByClient)
	}
	s.updateGaugesLocked()
	return c.view(), nil
}

// Get returns one campaign's view; List returns all in submit order.
func (s *Server) Get(id string) (CampaignView, bool) {
	c := s.q.get(id)
	if c == nil {
		return CampaignView{}, false
	}
	s.q.mu.Lock()
	defer s.q.mu.Unlock()
	return c.view(), true
}

func (s *Server) List() []CampaignView { return s.q.list() }

// Result returns the verified artifact for a done campaign. A cache
// entry that fails verification is never served: the caller gets
// errNotCached (the campaign can be resubmitted to re-simulate).
func (s *Server) Result(id string) ([]byte, error) {
	s.q.mu.Lock()
	c := s.q.camps[id]
	var key string
	var state State
	if c != nil {
		key, state = c.CacheKey, c.State
	}
	s.q.mu.Unlock()
	if c == nil {
		return nil, os.ErrNotExist
	}
	if state != StateDone || key == "" {
		return nil, fmt.Errorf("server: campaign %s is %s, no artifact", id, state)
	}
	b, ok := s.cache.get(key)
	if !ok {
		return nil, fmt.Errorf("%w (key %s: entry missing or failed verification)", errNotCached, key)
	}
	return b, nil
}

// terminal journals a campaign's end state under the queue lock and
// frees its quota slot. Append failure is fail-stop.
func (s *Server) terminal(id, typ string, r queueRec) {
	s.q.mu.Lock()
	err := s.q.append(typ, r)
	s.q.mu.Unlock()
	if err != nil {
		s.crash(err)
		return
	}
	s.releaseQuota(id)
	s.updateGauges()
	s.poke()
}

// requeue journals a campaign back to queued (keeping its quota slot —
// it is still live work). Append failure is fail-stop.
func (s *Server) requeue(id, reason string) {
	s.q.mu.Lock()
	err := s.q.append(recRequeue, queueRec{ID: id, Reason: reason})
	s.q.mu.Unlock()
	if err != nil {
		s.crash(err)
		return
	}
	s.mRequeued.Inc()
	s.updateGauges()
	s.poke()
}

// execute runs one leased campaign to a terminal state (or to a
// requeue, or to silence when the server is crashing). The campaign's
// run journal under StateDir/campaigns/<id> makes every execution
// resumable: a re-run after a crash replays finished PTPs instead of
// simulating them again.
func (s *Server) execute(id string) {
	defer s.wg.Done()
	ctx, cancel := context.WithCancelCause(s.ictx)
	defer cancel(nil)
	s.q.mu.Lock()
	c := s.q.camps[id]
	if c == nil || c.State != StateLeased || c.Holder != s.opt.Holder {
		s.q.mu.Unlock()
		return
	}
	c.detach = cancel
	cancelReq := c.CancelReq
	trace, submitted := c.Trace, c.submitted
	var sp Spec
	err := json.Unmarshal(c.SpecRaw, &sp)
	s.q.mu.Unlock()
	defer func() {
		s.q.mu.Lock()
		if cc := s.q.camps[id]; cc != nil && cc.detach != nil {
			cc.detach = nil
		}
		s.q.mu.Unlock()
	}()
	if err != nil {
		s.mFailed.Inc()
		s.terminal(id, recFailed, queueRec{ID: id, Error: "decoding spec: " + err.Error()})
		return
	}
	// Open the campaign's execution span. When the submit carried a
	// trace context it becomes a remote child of the client's span — the
	// cross-process link that puts every downstream shard simulation in
	// the submitting campaign's trace. A retroactive queue-wait child
	// records the time between submit (as this server learned of it) and
	// execution start, so stltrace can tell queueing from simulating.
	tenant := sp.tenant()
	var execSpan *obs.Span
	if tr := s.opt.Tracer; tr != nil {
		if sc, perr := obs.ParseTraceHeader(trace); trace != "" && perr == nil {
			execSpan = tr.StartRemote(sc, obs.KindCampaign, "execute:"+id)
		} else {
			execSpan = tr.Start(nil, obs.KindCampaign, "execute:"+id)
		}
		execSpan.Annotate("campaign", id)
		execSpan.Annotate("tenant", tenant)
		if !submitted.IsZero() {
			tr.StartAt(execSpan, obs.KindStage, "queue-wait", submitted).End()
		}
		defer execSpan.End()
		ctx = obs.ContextWithSpan(ctx, execSpan)
	}
	var traceStr string
	if tid := execSpan.TraceID(); !tid.IsZero() {
		traceStr = tid.String()
	}
	execStart := time.Now()
	if cancelReq {
		s.mCanceled.Inc()
		s.terminal(id, recCanceled, queueRec{ID: id, Error: errCanceledByClient.Error()})
		return
	}
	env, err := buildEnv(&sp)
	if err != nil {
		s.mFailed.Inc()
		s.terminal(id, recFailed, queueRec{ID: id, Error: err.Error()})
		return
	}
	// Cache first: a byte-identical configuration that already
	// completed is served from the verified cache without touching the
	// fleet. The artifact is already durable, so "done" is journalable
	// immediately.
	if _, ok := s.cache.get(env.key); ok {
		s.opt.Usage.AddCampaign(tenant)
		s.opt.Usage.AddCacheHit(tenant)
		execSpan.Annotate("cache", "hit")
		s.hCampaign.ObserveExemplar(time.Since(execStart).Seconds(), traceStr)
		s.mDone.Inc()
		s.terminal(id, recDone, queueRec{ID: id, CacheKey: env.key, FromCache: true})
		return
	}
	s.opt.Usage.AddCampaign(tenant)
	s.opt.Usage.AddCacheMiss(tenant)
	s.q.mu.Lock()
	err = s.q.append(recRunning, queueRec{ID: id, Holder: s.opt.Holder})
	s.q.mu.Unlock()
	if err != nil {
		s.crash(err)
		return
	}
	s.updateGauges()

	copt := env.copt
	copt.Workers = s.opt.SimWorkers
	copt.Metrics = s.opt.Metrics
	if s.opt.Fleet != nil {
		sim, ferr := s.opt.Fleet()
		if ferr != nil {
			s.finishErr(id, &sp, fmt.Errorf("server: building fleet simulator: %w", ferr), ctx)
			return
		}
		copt.Simulator = sim
	}
	// Everything below run.Run sees only a context; the usage ref lets
	// the fault simulator and the dist coordinator meter fault-blocks
	// against the right tenant without knowing about the server.
	ctx = obs.ContextWithUsage(ctx, s.opt.Usage, tenant)
	runStart := time.Now()
	rep, err := run.Run(ctx, env.cfg, env.ms, env.lib, copt, run.Options{
		CheckpointDir: s.runDir(id),
		StageTimeout:  s.opt.StageTimeout,
		FCTolerance:   sp.fcTol(),
		MaxPTPRetries: sp.maxPTPRetries(),
		Logf:          s.opt.Logf,
		Tracer:        s.opt.Tracer,
		Metrics:       s.opt.Metrics,
		Usage:         s.opt.Usage,
		Tenant:        tenant,
	})
	// Worker-seconds are capacity reserved, not work completed: campaign
	// wall-clock times the simulation parallelism held for it, metered
	// whether the run succeeded or not.
	s.opt.Usage.AddWorkerTime(tenant, time.Duration(s.opt.SimWorkers)*time.Since(runStart))
	if err != nil {
		execSpan.Annotate("error", err.Error())
		s.finishErr(id, &sp, err, ctx)
		return
	}
	var buf bytes.Buffer
	if err := stl.WriteSTL(&buf, rep.Compacted); err != nil {
		s.mFailed.Inc()
		s.terminal(id, recFailed, queueRec{ID: id, Error: "encoding artifact: " + err.Error()})
		return
	}
	if err := s.cache.put(env.key, buf.Bytes()); err != nil {
		s.mFailed.Inc()
		s.terminal(id, recFailed, queueRec{ID: id, Error: err.Error()})
		return
	}
	s.hCampaign.ObserveExemplar(time.Since(execStart).Seconds(), traceStr)
	s.mDone.Inc()
	s.terminal(id, recDone, queueRec{ID: id, CacheKey: env.key})
}

// finishErr classifies a failed execution: client cancellation and
// drain are explicit causes (satellite: context.Cause, not a bare
// context.Canceled); a crashing server journals nothing; transient
// failures retry within the tenant's budget; everything else fails the
// campaign for good.
func (s *Server) finishErr(id string, sp *Spec, err error, ctx context.Context) {
	if s.killed.Load() {
		return // crash path: the journal already holds the last durable truth
	}
	cause := context.Cause(ctx)
	switch {
	case errors.Is(cause, errCanceledByClient):
		s.mCanceled.Inc()
		s.terminal(id, recCanceled, queueRec{ID: id, Error: cause.Error()})
	case errors.Is(cause, errDraining):
		// Checkpointed by run's WAL; the next server resumes it.
		s.requeue(id, errDraining.Error())
	case errors.Is(err, overload.ErrOverloaded) || journal.IsTransient(err):
		if s.tenantRetryAllowed(sp.tenant()) {
			s.requeue(id, "transient: "+err.Error())
		} else {
			s.mFailed.Inc()
			s.terminal(id, recFailed, queueRec{ID: id, Error: "retry budget exhausted: " + err.Error()})
		}
	default:
		s.mFailed.Inc()
		s.terminal(id, recFailed, queueRec{ID: id, Error: err.Error()})
	}
}

func (s *Server) tenantRetryAllowed(name string) bool {
	return s.tenant(name).rb.Allow()
}
