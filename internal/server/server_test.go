package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gpustl/internal/core"
	"gpustl/internal/failpoint"
	"gpustl/internal/obs"
	"gpustl/internal/ptpgen"
	"gpustl/internal/stl"
)

// inlineLib serializes a small generated library for Spec.STL.
func inlineLib(t *testing.T, n int, seed int64) json.RawMessage {
	t.Helper()
	lib := &stl.STL{PTPs: []*stl.PTP{ptpgen.IMM(n, seed), ptpgen.MEM(n, seed+1)}}
	var buf bytes.Buffer
	if err := stl.WriteSTL(&buf, lib); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// smallSpec is a fast campaign (~tens of ms of simulation).
func smallSpec(t *testing.T) *Spec {
	fc := 5.0
	return &Spec{STL: inlineLib(t, 6, 11), Faults: 300, FCTol: &fc}
}

// slowSpec is a campaign big enough to still be live while the test
// races it (kills the server mid-run, submits a second tenant, ...).
func slowSpec(t *testing.T) *Spec {
	fc := 5.0
	return &Spec{STL: inlineLib(t, 24, 31), Faults: 1500, FCTol: &fc}
}

type testSrv struct {
	*Server
	cancel context.CancelFunc
	done   chan error
}

// startSrv launches a server on dir. It does NOT wait for readiness —
// takeover tests start servers that must block on the lease.
func startSrv(t *testing.T, dir, holder string, mod func(*Options)) *testSrv {
	t.Helper()
	opts := Options{
		StateDir:       dir,
		Holder:         holder,
		MaxActive:      2,
		HeartbeatEvery: 10 * time.Millisecond,
		LeaseTTL:       80 * time.Millisecond,
		DrainGrace:     5 * time.Second,
		SimWorkers:     2,
		Metrics:        obs.NewRegistry(),
	}
	if mod != nil {
		mod(&opts)
	}
	s := New(opts)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	ts := &testSrv{Server: s, cancel: cancel, done: done}
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			t.Error("server did not stop within 20s")
		}
	})
	return ts
}

func (ts *testSrv) waitReady(t *testing.T, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !ts.Ready() {
		select {
		case err := <-ts.done:
			ts.done <- err
			t.Fatalf("server died while waiting for ready: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server not ready after %s", timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (ts *testSrv) waitTerminal(t *testing.T, id string, timeout time.Duration) CampaignView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if v, ok := ts.Get(id); ok && v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			v, _ := ts.Get(id)
			t.Fatalf("campaign %s not terminal after %s (state %s)", id, timeout, v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func counter(ts *testSrv, name string) uint64 {
	return ts.opt.Metrics.Counter(name).Value()
}

// TestCampaignLifecycle pins the happy path and the idempotency and
// cache contracts: submit → done → verified artifact; resubmitting the
// same id is a no-op, the same id with a different spec is a conflict,
// and the same content under a new id is served from the cache without
// re-simulation.
func TestCampaignLifecycle(t *testing.T) {
	ts := startSrv(t, t.TempDir(), "t1", nil)
	ts.waitReady(t, 10*time.Second)

	sp := smallSpec(t)
	if _, err := ts.Submit("c1", sp); err != nil {
		t.Fatal(err)
	}
	v := ts.waitTerminal(t, "c1", 60*time.Second)
	if v.State != StateDone {
		t.Fatalf("campaign ended %s (%s), want done", v.State, v.Error)
	}
	if v.FromCache {
		t.Fatal("first run of new content claims a cache hit")
	}
	art, err := ts.Result("c1")
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if _, err := stl.ReadSTL(bytes.NewReader(art)); err != nil {
		t.Fatalf("artifact is not a readable STL: %v", err)
	}

	// Idempotent resubmission of the same id + spec: same campaign back.
	v2, err := ts.Submit("c1", sp)
	if err != nil {
		t.Fatalf("idempotent resubmit: %v", err)
	}
	if v2.ID != "c1" || v2.State != StateDone {
		t.Fatalf("idempotent resubmit returned %s/%s", v2.ID, v2.State)
	}
	// Same id, different spec: conflict.
	other := smallSpec(t)
	other.Reverse = true
	if _, err := ts.Submit("c1", other); !errors.Is(err, ErrSpecConflict) {
		t.Fatalf("conflicting resubmit: got %v, want ErrSpecConflict", err)
	}

	// Same content, new id: a verified cache hit, zero shards simulated.
	hits0 := counter(ts, "gpustl_server_cache_hits_total")
	if _, err := ts.Submit("c2", sp); err != nil {
		t.Fatal(err)
	}
	v3 := ts.waitTerminal(t, "c2", 60*time.Second)
	if v3.State != StateDone || !v3.FromCache {
		t.Fatalf("repeat content: state %s fromCache %v, want done from cache", v3.State, v3.FromCache)
	}
	if got := counter(ts, "gpustl_server_cache_hits_total"); got <= hits0 {
		t.Fatalf("cache-hit counter did not move (%d -> %d)", hits0, got)
	}
	art2, err := ts.Result("c2")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(art, art2) {
		t.Fatal("cache served different bytes than the original run")
	}
}

// TestResultCacheDetectsBitRot flips one byte of a cached artifact on
// disk and asserts the contract: the read is a verified miss (metric
// incremented, never served), and resubmission re-simulates and repairs
// the entry.
func TestResultCacheDetectsBitRot(t *testing.T) {
	dir := t.TempDir()
	ts := startSrv(t, dir, "t1", nil)
	ts.waitReady(t, 10*time.Second)

	sp := smallSpec(t)
	if _, err := ts.Submit("c1", sp); err != nil {
		t.Fatal(err)
	}
	if v := ts.waitTerminal(t, "c1", 60*time.Second); v.State != StateDone {
		t.Fatalf("campaign ended %s (%s)", v.State, v.Error)
	}
	clean, err := ts.Result("c1")
	if err != nil {
		t.Fatal(err)
	}

	// Rot exactly one byte of the only cache artifact.
	arts, err := filepath.Glob(filepath.Join(dir, "cache", "*.stl.json"))
	if err != nil || len(arts) != 1 {
		t.Fatalf("want exactly one cache artifact, got %v (%v)", arts, err)
	}
	b, err := os.ReadFile(arts[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(arts[0], b, 0o666); err != nil {
		t.Fatal(err)
	}

	corrupt0 := counter(ts, "gpustl_server_cache_corrupt_total")
	if _, err := ts.Result("c1"); !errors.Is(err, errNotCached) {
		t.Fatalf("corrupted entry: got %v, want errNotCached", err)
	}
	if got := counter(ts, "gpustl_server_cache_corrupt_total"); got != corrupt0+1 {
		t.Fatalf("corrupt counter %d, want %d", got, corrupt0+1)
	}

	// Same content again: the rotted entry is gone, so this must
	// re-simulate (no cache hit) and repair the cache.
	if _, err := ts.Submit("c2", sp); err != nil {
		t.Fatal(err)
	}
	v := ts.waitTerminal(t, "c2", 60*time.Second)
	if v.State != StateDone || v.FromCache {
		t.Fatalf("repair run: state %s fromCache %v, want done via re-simulation", v.State, v.FromCache)
	}
	repaired, err := ts.Result("c1")
	if err != nil {
		t.Fatalf("after repair: %v", err)
	}
	if !bytes.Equal(repaired, clean) {
		t.Fatal("repaired artifact differs from the original bytes")
	}
}

// TestCacheCorruptFailpoint drives the same contract through the
// "server.cache.corrupt" failpoint the chaos soak arms: the artifact is
// corrupted as written (the write itself reports success), so the first
// read must be the point of detection.
func TestCacheCorruptFailpoint(t *testing.T) {
	if err := failpoint.Enable("server.cache.corrupt", failpoint.Config{
		Kind: failpoint.KindCorrupt, Times: 1, Seed: 7,
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { failpoint.Disable("server.cache.corrupt") })

	ts := startSrv(t, t.TempDir(), "t1", nil)
	ts.waitReady(t, 10*time.Second)
	sp := smallSpec(t)
	if _, err := ts.Submit("c1", sp); err != nil {
		t.Fatal(err)
	}
	if v := ts.waitTerminal(t, "c1", 60*time.Second); v.State != StateDone {
		t.Fatalf("campaign ended %s (%s)", v.State, v.Error)
	}
	// The journal says done, but the artifact was rotted in flight:
	// verification must refuse to serve it.
	if _, err := ts.Result("c1"); !errors.Is(err, errNotCached) {
		t.Fatalf("injected corruption: got %v, want errNotCached", err)
	}
	if got := counter(ts, "gpustl_server_cache_corrupt_total"); got == 0 {
		t.Fatal("corrupt counter never moved")
	}
	// Resubmission re-simulates (failpoint budget is spent → clean put).
	if _, err := ts.Submit("c2", sp); err != nil {
		t.Fatal(err)
	}
	if v := ts.waitTerminal(t, "c2", 60*time.Second); v.State != StateDone || v.FromCache {
		t.Fatalf("repair run: state %s fromCache %v", v.State, v.FromCache)
	}
	if _, err := ts.Result("c1"); err != nil {
		t.Fatalf("after repair: %v", err)
	}
}

// TestJournalAppendFailureIsFailStop arms "server.journal.append": an
// append that cannot be made durable must crash the server (never
// continue on in-memory-only state), and a restart must come back
// without the unjournaled campaign.
func TestJournalAppendFailureIsFailStop(t *testing.T) {
	if err := failpoint.Enable("server.journal.append", failpoint.Config{
		Kind: failpoint.KindError, Times: 1, Seed: 7,
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { failpoint.Disable("server.journal.append") })

	dir := t.TempDir()
	a := startSrv(t, dir, "srv", nil)
	a.waitReady(t, 10*time.Second)
	if _, err := a.Submit("c1", smallSpec(t)); err == nil {
		t.Fatal("submit with a failing journal append reported success")
	}
	select {
	case err := <-a.done:
		if err == nil {
			t.Fatal("crashed server returned a nil Run error")
		}
		a.done <- err
	case <-time.After(10 * time.Second):
		t.Fatal("server did not fail-stop after an append failure")
	}

	// Restart (same holder name → instant lease re-acquisition). The
	// failed submit was never durable, so it must be gone; new work runs.
	b := startSrv(t, dir, "srv", nil)
	b.waitReady(t, 10*time.Second)
	if _, ok := b.Get("c1"); ok {
		t.Fatal("unjournaled campaign survived the restart")
	}
	if _, err := b.Submit("c2", smallSpec(t)); err != nil {
		t.Fatal(err)
	}
	if v := b.waitTerminal(t, "c2", 60*time.Second); v.State != StateDone {
		t.Fatalf("post-restart campaign ended %s (%s)", v.State, v.Error)
	}
}

// TestLeaseRenewalFailureIsFailStop arms "server.lease.expire": a
// server that cannot renew its lease must assume a successor is coming
// and crash rather than keep writing.
func TestLeaseRenewalFailureIsFailStop(t *testing.T) {
	if err := failpoint.Enable("server.lease.expire", failpoint.Config{
		Kind: failpoint.KindError, Times: 1, Seed: 7,
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { failpoint.Disable("server.lease.expire") })

	ts := startSrv(t, t.TempDir(), "srv", nil)
	ts.waitReady(t, 10*time.Second)
	select {
	case err := <-ts.done:
		if err == nil || !strings.Contains(err.Error(), "lease") {
			t.Fatalf("Run returned %v, want a lease-loss crash", err)
		}
		ts.done <- err
	case <-time.After(10 * time.Second):
		t.Fatal("server kept running without a renewable lease")
	}
	if got := counter(ts, "gpustl_server_lease_lost_total"); got != 1 {
		t.Fatalf("lease-lost counter %d, want 1", got)
	}
}

// TestLeaseTakeover kills a server mid-campaign and asserts a second
// server on the same state dir waits out the lease, adopts the orphan,
// and finishes it from its run WAL.
func TestLeaseTakeover(t *testing.T) {
	dir := t.TempDir()
	// A's fleet hook blocks: c1 journals "running" and then parks, so
	// the kill deterministically lands mid-campaign.
	gate := make(chan struct{})
	a := startSrv(t, dir, "a", func(o *Options) {
		o.Fleet = func() (core.FaultSimulator, error) { <-gate; return nil, nil }
	})
	a.waitReady(t, 10*time.Second)
	sp := slowSpec(t)
	if _, err := a.Submit("c1", sp); err != nil {
		t.Fatal(err)
	}
	// B comes up against a held lease: it must block, not ready.
	b := startSrv(t, dir, "b", nil)
	time.Sleep(50 * time.Millisecond)
	if b.Ready() {
		t.Fatal("second server became ready while the first held the lease")
	}

	// Wait until the campaign has journaled "running", then kill A.
	// Unblocking the gate afterwards lets A's parked executor observe
	// the crash and exit (a real SIGKILL would not need the courtesy).
	deadline := time.Now().Add(30 * time.Second)
	for {
		if v, ok := a.Get("c1"); ok && v.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	a.Kill()
	close(gate)
	select {
	case err := <-a.done:
		a.done <- err
	case <-time.After(10 * time.Second):
		t.Fatal("killed server did not stop")
	}

	// B must take over after the lease TTL and finish the campaign.
	b.waitReady(t, 10*time.Second)
	if got := counter(b, "gpustl_server_campaigns_adopted_total"); got != 1 {
		t.Fatalf("adopted counter %d, want 1", got)
	}
	v := b.waitTerminal(t, "c1", 120*time.Second)
	if v.State != StateDone {
		t.Fatalf("adopted campaign ended %s (%s)", v.State, v.Error)
	}
	if _, err := b.Result("c1"); err != nil {
		t.Fatalf("adopted campaign's artifact: %v", err)
	}
}

// TestHTTPQuotaAndReadyz drives the HTTP surface: per-tenant quota maps
// to 429 + Retry-After, other tenants are unaffected, and /readyz
// carries the queue JSON body on both sides of ready.
func TestHTTPQuotaAndReadyz(t *testing.T) {
	ts := startSrv(t, t.TempDir(), "t1", func(o *Options) {
		o.TenantQuota = 1
	})
	ts.waitReady(t, 10*time.Second)
	h := ts.Handler()

	post := func(id, tenant string, sp *Spec) *httptest.ResponseRecorder {
		sp.Tenant = tenant
		body, err := json.Marshal(submitReq{ID: id, Spec: *sp})
		if err != nil {
			t.Fatal(err)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("POST", "/api/v1/campaigns", bytes.NewReader(body)))
		return w
	}

	if w := post("q1", "acme", slowSpec(t)); w.Code != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", w.Code, w.Body)
	}
	// Tenant over quota: 429 with a Retry-After hint.
	w := post("q2", "acme", slowSpec(t))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %d %s", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Another tenant is unaffected.
	if w := post("q3", "umbrella", smallSpec(t)); w.Code != http.StatusAccepted {
		t.Fatalf("other tenant: %d %s", w.Code, w.Body)
	}

	// /readyz: 200 with the queue JSON while live.
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/readyz", nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("/readyz: %d %s", rw.Code, rw.Body)
	}
	var rz readyzBody
	if err := json.Unmarshal(rw.Body.Bytes(), &rz); err != nil {
		t.Fatalf("/readyz body: %v", err)
	}
	if !rz.Ready || rz.Server != "t1" || rz.QueueDepth+rz.InFlight < 2 {
		t.Fatalf("/readyz body %+v: want ready, 2 campaigns visible", rz)
	}

	ts.waitTerminal(t, "q1", 120*time.Second)
	ts.waitTerminal(t, "q3", 120*time.Second)

	// A killed server's /readyz flips to 503 but still carries the body.
	ts.Kill()
	select {
	case err := <-ts.done:
		ts.done <- err
	case <-time.After(10 * time.Second):
		t.Fatal("killed server did not stop")
	}
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/readyz", nil))
	if rw.Code != http.StatusServiceUnavailable {
		t.Fatalf("killed /readyz: %d", rw.Code)
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &rz); err != nil || rz.Ready {
		t.Fatalf("killed /readyz body %s (%v): want ready=false JSON", rw.Body, err)
	}
}
