// Package server is the crash-only campaign control plane: a
// long-running HTTP service that accepts STL compaction campaigns
// (submit / status / cancel / results / list), runs many of them
// concurrently against the shared fault-simulation fleet, and survives
// its own death at any instant.
//
// Everything the server knows lives in its state directory:
//
//   - queue.wal — an append-only journal (internal/journal) holding
//     every campaign state transition: submitted → leased → running →
//     done/failed/canceled. A restarted server replays it and carries
//     on; nothing is kept only in memory.
//   - LOCK — the state-dir lease: holder + expiry, renewed every
//     heartbeat. A crashed server stops renewing, and a successor (a
//     restart, or a second server pointed at the same directory)
//     acquires the lease after expiry and adopts every orphaned
//     campaign at its last journaled stage via the per-campaign run
//     WAL — no finished PTP is ever simulated twice.
//   - campaigns/<id>/ — each campaign's own crash-recovery journal
//     (internal/run's campaign.wal).
//   - cache/ — the content-addressed result cache, keyed by the
//     campaign's config hash (netlist + PTP set + sim options) and
//     checksum-verified on every read.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"gpustl/internal/core"
	"gpustl/internal/gpu"
	"gpustl/internal/ptpgen"
	"gpustl/internal/run"
	"gpustl/internal/stl"
)

// MaxSpecBytes caps a submitted campaign spec (including an inline STL
// library). Real libraries are kilobytes; the cap exists so a hostile
// submission fails fast instead of exhausting server memory.
const MaxSpecBytes = 8 << 20

// Spec describes one compaction campaign a client submits. The
// workload is either an inline STL library (the in-field case: a
// device ships its test library to be compacted) or a generated one
// (Target/N/Seed, the same DU generation stlcompact -target DU uses).
type Spec struct {
	// Tenant attributes the campaign to a quota bucket. Empty maps to
	// "default".
	Tenant string `json:"tenant,omitempty"`
	// STL, when present, is the inline library: the JSON produced by
	// WriteSTL / `stlcompact -save`.
	STL json.RawMessage `json:"stl,omitempty"`
	// Target/N/Seed generate a library when STL is absent. Only "DU"
	// (IMM + MEM + CNTRL PTPs) can be generated server-side; SP/SFU
	// libraries need ATPG and must be submitted inline. Seed also seeds
	// the fault-list sample, exactly as stlcompact's -seed does, so a
	// generated campaign byte-matches the equivalent stlcompact run.
	Target string `json:"target,omitempty"`
	N      int    `json:"n,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	// Faults samples each target module's fault list (0 = default 4000).
	Faults int `json:"faults,omitempty"`
	// Reverse and Instr mirror stlcompact's -reverse / -instr.
	Reverse bool `json:"reverse,omitempty"`
	Instr   bool `json:"instr,omitempty"`
	// FCTol is the FC-safety tolerance in percentage points (default 5).
	FCTol *float64 `json:"fctol,omitempty"`
	// MaxPTPRetries bounds crash-class PTP retries (default 2).
	MaxPTPRetries *int `json:"maxPtpRetries,omitempty"`
}

func (sp *Spec) tenant() string {
	if sp.Tenant == "" {
		return "default"
	}
	return sp.Tenant
}

func (sp *Spec) fcTol() float64 {
	if sp.FCTol == nil {
		return 5
	}
	return *sp.FCTol
}

func (sp *Spec) maxPTPRetries() int {
	if sp.MaxPTPRetries == nil {
		return 2
	}
	return *sp.MaxPTPRetries
}

func (sp *Spec) faultSample() int {
	if sp.Faults <= 0 {
		return 4000
	}
	return sp.Faults
}

// Validate checks the parts of a spec that can be judged without
// building the (expensive) module environment, so a bad submission is
// rejected on the HTTP path in microseconds.
func (sp *Spec) Validate() error {
	if len(sp.STL) == 0 {
		if sp.Target != "DU" {
			return fmt.Errorf("server: spec needs an inline stl or target \"DU\" (got target %q)", sp.Target)
		}
		if sp.N < 1 || sp.N > 4096 {
			return fmt.Errorf("server: generated campaign n=%d out of range [1,4096]", sp.N)
		}
	}
	if len(sp.STL) > MaxSpecBytes {
		return fmt.Errorf("server: inline stl exceeds %d-byte limit", MaxSpecBytes)
	}
	if sp.Faults < 0 {
		return errors.New("server: negative fault sample")
	}
	return nil
}

// env is a campaign's fully built execution environment plus its
// content address.
type env struct {
	cfg  gpu.Config
	ms   *core.ModuleSet
	lib  *stl.STL
	copt core.Options
	// key is the content address of the campaign's result:
	// run.ConfigHash over (GPU config, per-module netlists and fault
	// lists, the PTP set, and the deterministic compactor options) —
	// everything that determines the output bytes, and nothing that
	// doesn't (worker count, simulator backend, retry knobs).
	key string
}

// buildEnv constructs the campaign environment a spec describes. It is
// deterministic: the same spec always yields the same config hash, so
// repeat submissions hit the result cache.
func buildEnv(sp *Spec) (*env, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	var lib *stl.STL
	// sampleSeed mirrors stlcompact, where -seed (default 1) seeds both
	// PTP generation and the fault-list sample: a generated campaign and
	// `stlcompact -target DU` with the same seed/n/faults must produce
	// byte-identical artifacts. Inline libraries carry no generation
	// seed, so they sample with stlcompact's default.
	sampleSeed := int64(1)
	if len(sp.STL) > 0 {
		s, err := stl.ReadSTL(bytes.NewReader(sp.STL))
		if err != nil {
			return nil, fmt.Errorf("server: inline stl: %w", err)
		}
		lib = s
	} else {
		sampleSeed = sp.Seed
		lib = &stl.STL{PTPs: []*stl.PTP{
			ptpgen.IMM(sp.N, sp.Seed+1),
			ptpgen.MEM(sp.N, sp.Seed+2),
			ptpgen.CNTRL(max(2, sp.N/10), sp.Seed+3),
		}}
	}
	ms, err := core.NewModuleSet(lib, sp.faultSample(), sampleSeed)
	if err != nil {
		return nil, fmt.Errorf("server: building module set: %w", err)
	}
	cfg := gpu.DefaultConfig()
	copt := core.Options{
		ReversePatterns:        sp.Reverse,
		InstructionGranularity: sp.Instr,
	}
	key, err := run.ConfigHash(cfg, ms, lib, copt)
	if err != nil {
		return nil, fmt.Errorf("server: hashing campaign config: %w", err)
	}
	return &env{cfg: cfg, ms: ms, lib: lib, copt: copt, key: key}, nil
}
