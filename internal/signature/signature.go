// Package signature implements the Signature-per-Thread (SpT) mechanism
// the paper's PTPs use to make test results observable: each thread folds
// every test operation's result into a running signature with a MISR-like
// step and stores it to memory, where the memory bus is the observation
// point.
//
// The PTP generators emit the same fold as GPU instructions
// (rotate-left-by-1 then XOR); this package is the bit-exact software
// reference used to predict and verify the stored signatures, plus a
// polynomial MISR for library users who want a hardware-style compactor.
package signature

import "math/bits"

// Fold is one SpT update step as the generated PTPs compute it in
// software: sig' = rotl1(sig) XOR value.
func Fold(sig, value uint32) uint32 {
	return bits.RotateLeft32(sig, 1) ^ value
}

// FoldAll applies Fold over a value stream starting from seed.
func FoldAll(seed uint32, values []uint32) uint32 {
	sig := seed
	for _, v := range values {
		sig = Fold(sig, v)
	}
	return sig
}

// MISR is a 32-bit multiple-input signature register with configurable
// feedback polynomial (taps given as a bit mask over state bits).
type MISR struct {
	state uint32
	poly  uint32
}

// DefaultPoly is the CRC-32 (IEEE) polynomial in its common bit-reversed
// form, a maximal-length choice for 32-bit MISRs.
const DefaultPoly = 0xEDB88320

// NewMISR creates a MISR with the given seed and feedback polynomial
// (DefaultPoly when poly is 0).
func NewMISR(seed, poly uint32) *MISR {
	if poly == 0 {
		poly = DefaultPoly
	}
	return &MISR{state: seed, poly: poly}
}

// Update folds one parallel input word into the signature.
func (m *MISR) Update(v uint32) {
	fb := m.state & 1
	m.state >>= 1
	if fb == 1 {
		m.state ^= m.poly
	}
	m.state ^= v
}

// Value returns the current signature.
func (m *MISR) Value() uint32 { return m.state }

// Reset restores the seed state.
func (m *MISR) Reset(seed uint32) { m.state = seed }
