package signature

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFoldMatchesManualRotate(t *testing.T) {
	sig := uint32(0x80000001)
	got := Fold(sig, 0)
	want := uint32(0x00000003) // rotl1(0x80000001)
	if got != want {
		t.Fatalf("Fold = %#x, want %#x", got, want)
	}
	if Fold(0, 0xdeadbeef) != 0xdeadbeef {
		t.Fatal("Fold with zero sig must equal value")
	}
}

func TestFoldAll(t *testing.T) {
	vals := []uint32{1, 2, 3}
	sig := FoldAll(7, vals)
	want := Fold(Fold(Fold(7, 1), 2), 3)
	if sig != want {
		t.Fatalf("FoldAll = %#x, want %#x", sig, want)
	}
}

func TestFoldOrderSensitivity(t *testing.T) {
	// The SpT must be order sensitive (that is what makes SB removal
	// observable in subsequent signatures).
	a := FoldAll(0, []uint32{10, 20, 30})
	b := FoldAll(0, []uint32{30, 20, 10})
	if a == b {
		t.Fatal("signature insensitive to order")
	}
}

func TestFoldValueSensitivityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		seed := r.Uint32()
		vals := make([]uint32, 1+r.Intn(20))
		for i := range vals {
			vals[i] = r.Uint32()
		}
		orig := FoldAll(seed, vals)
		// Flip one bit of one value: the signature must change.
		i := r.Intn(len(vals))
		vals[i] ^= 1 << uint(r.Intn(32))
		return FoldAll(seed, vals) != orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMISRBasics(t *testing.T) {
	m := NewMISR(0, 0)
	m.Update(0xdeadbeef)
	if m.Value() == 0 {
		t.Fatal("MISR stuck at zero")
	}
	m.Reset(5)
	if m.Value() != 5 {
		t.Fatal("Reset failed")
	}
}

func TestMISRDistinguishesStreams(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		vals := make([]uint32, 8)
		for i := range vals {
			vals[i] = r.Uint32()
		}
		a := NewMISR(1, 0)
		b := NewMISR(1, 0)
		for _, v := range vals {
			a.Update(v)
		}
		j := r.Intn(len(vals))
		vals[j] ^= 1 << uint(r.Intn(32))
		for _, v := range vals {
			b.Update(v)
		}
		if a.Value() == b.Value() {
			t.Fatalf("aliasing on single-bit change (trial %d)", trial)
		}
	}
}

func TestMISRCustomPoly(t *testing.T) {
	a := NewMISR(1, 0x04C11DB7)
	b := NewMISR(1, 0)
	a.Update(42)
	b.Update(42)
	if a.Value() == b.Value() {
		t.Fatal("polynomial ignored")
	}
}
