package stl

// Dominator-based loop analysis. Stage 1 must exclude exactly the basic
// blocks inside parametric loops; the textbook-precise way to find loop
// bodies is: compute dominators, classify an edge u→v as a back edge when
// v dominates u, and collect the natural loop of each back edge by walking
// predecessors from u up to v. This replaces a cruder "every block between
// header and latch" interval rule, which over-excludes blocks that merely
// sit between a loop's header and latch in program order without being
// part of it.

// predecessors builds the reverse CFG.
func predecessors(blocks []BasicBlock) [][]int {
	preds := make([][]int, len(blocks))
	for u, b := range blocks {
		for _, v := range b.Succs {
			preds[v] = append(preds[v], u)
		}
	}
	return preds
}

// reachable marks blocks reachable from entry (block 0).
func reachable(blocks []BasicBlock) []bool {
	seen := make([]bool, len(blocks))
	if len(blocks) == 0 {
		return seen
	}
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range blocks[u].Succs {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// dominators computes the immediate-dominator-free dominance relation with
// the classic iterative bit-set data-flow:
//
//	dom(entry) = {entry}
//	dom(b)     = {b} ∪ ⋂ dom(p) over reachable predecessors p
//
// Block counts here are small (hundreds), so word-packed sets suffice.
func dominators(blocks []BasicBlock) (dom [][]uint64, reach []bool) {
	n := len(blocks)
	words := (n + 63) / 64
	reach = reachable(blocks)
	preds := predecessors(blocks)

	full := make([]uint64, words)
	for i := 0; i < n; i++ {
		full[i/64] |= 1 << uint(i%64)
	}
	dom = make([][]uint64, n)
	for i := range dom {
		dom[i] = make([]uint64, words)
		if i == 0 {
			dom[i][0] = 1
		} else {
			copy(dom[i], full)
		}
	}

	changed := true
	tmp := make([]uint64, words)
	for changed {
		changed = false
		for b := 1; b < n; b++ {
			if !reach[b] {
				continue
			}
			copy(tmp, full)
			any := false
			for _, p := range preds[b] {
				if !reach[p] {
					continue
				}
				for w := range tmp {
					tmp[w] &= dom[p][w]
				}
				any = true
			}
			if !any {
				continue // a reachable non-entry block always has a reachable pred
			}
			tmp[b/64] |= 1 << uint(b%64)
			for w := range tmp {
				if tmp[w] != dom[b][w] {
					dom[b][w] = tmp[w]
					changed = true
				}
			}
		}
	}
	return dom, reach
}

func domContains(set []uint64, b int) bool {
	return set[b/64]>>uint(b%64)&1 == 1
}

// loopBlocks marks blocks belonging to any natural loop: for every back
// edge u→v (v dominates u), the loop body is v plus all blocks that reach
// u without passing through v.
func loopBlocks(blocks []BasicBlock) []bool {
	inLoop := make([]bool, len(blocks))
	if len(blocks) == 0 {
		return inLoop
	}
	dom, reach := dominators(blocks)
	preds := predecessors(blocks)

	for u, b := range blocks {
		if !reach[u] {
			continue
		}
		for _, v := range b.Succs {
			if !domContains(dom[u], v) {
				continue // not a back edge
			}
			// Natural loop of u→v: walk predecessors from u, stopping at v.
			inLoop[v] = true
			if u == v {
				continue
			}
			stack := []int{u}
			seen := map[int]bool{u: true, v: true}
			inLoop[u] = true
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range preds[x] {
					if !seen[p] && reach[p] {
						seen[p] = true
						inLoop[p] = true
						stack = append(stack, p)
					}
				}
			}
		}
	}
	return inLoop
}
