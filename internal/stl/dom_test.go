package stl

import (
	"testing"
)

func TestDominatorsLinear(t *testing.T) {
	p := prog(t, "MVI R1, 1\nBRA next\nnext: IADD R2, R1, R1\nEXIT")
	blocks := BasicBlocks(p)
	dom, reach := dominators(blocks)
	for b := range blocks {
		if !reach[b] {
			t.Fatalf("block %d unreachable", b)
		}
		if !domContains(dom[b], 0) {
			t.Fatalf("entry does not dominate block %d", b)
		}
		if !domContains(dom[b], b) {
			t.Fatalf("block %d does not dominate itself", b)
		}
	}
}

func TestLoopBlocksNatural(t *testing.T) {
	p := prog(t, `
		MVI R1, 0
	loop:
		IADDI R1, R1, 1
		ISETI R2, R1, 4, LT, P0
		@P0 BRA loop
		EXIT
	`)
	blocks := BasicBlocks(p)
	in := loopBlocks(blocks)
	if in[0] {
		t.Error("entry marked in-loop")
	}
	found := false
	for b := range blocks {
		if in[b] {
			found = true
		}
	}
	if !found {
		t.Fatal("loop not found")
	}
}

// TestLoopBlocksSkippedOverCode is the case the old interval rule got
// wrong: a block that sits between a loop's header and latch in program
// order but is NOT part of the loop (it is jumped over) must stay
// admissible.
func TestLoopBlocksSkippedOverCode(t *testing.T) {
	p := prog(t, `
		MVI   R1, 0
		BRA   loop
	island:                   ; never part of the loop: entered only after it
		MVI   R5, 7
		GST   [R0+0], R5
		BRA   done
	loop:
		IADDI R1, R1, 1
		ISETI R2, R1, 4, LT, P0
		@P0 BRA loop
		BRA   island
	done:
		EXIT
	`)
	blocks := BasicBlocks(p)
	in := loopBlocks(blocks)
	// Find the island block (contains pc of "MVI R5, 7" = index 2).
	for bi, b := range blocks {
		if b.Start <= 2 && 2 < b.End {
			if in[bi] {
				t.Fatal("island block wrongly marked as loop body")
			}
		}
		// The loop body (contains IADDI at pc 5).
		if b.Start <= 5 && 5 < b.End {
			if !in[bi] {
				t.Fatal("loop body not marked")
			}
		}
	}
	// The island instructions must be admissible.
	arcs := ARCs(p)
	islandCovered := false
	for _, r := range arcs {
		if r.Contains(2) {
			islandCovered = true
		}
		if r.Contains(5) {
			t.Fatal("loop instruction inside ARC")
		}
	}
	if !islandCovered {
		t.Fatal("island excluded from ARCs (interval-rule over-approximation)")
	}
}

func TestLoopBlocksSelfLoop(t *testing.T) {
	p := prog(t, "spin: BRA spin")
	blocks := BasicBlocks(p)
	in := loopBlocks(blocks)
	if !in[0] {
		t.Fatal("self-loop not detected")
	}
}

func TestLoopBlocksUnreachable(t *testing.T) {
	p := prog(t, `
		EXIT
	dead:
		IADDI R1, R1, 1
		BRA dead
	`)
	blocks := BasicBlocks(p)
	// Must not panic; unreachable loop blocks may or may not be marked,
	// but reachable analysis must hold.
	_, reach := dominators(blocks)
	if !reach[0] {
		t.Fatal("entry unreachable")
	}
	_ = loopBlocks(blocks)
}

func TestLoopBlocksNestedLoops(t *testing.T) {
	p := prog(t, `
		MVI R1, 0
	outer:
		MVI R2, 0
	inner:
		IADDI R2, R2, 1
		ISETI R3, R2, 3, LT, P0
		@P0 BRA inner
		IADDI R1, R1, 1
		ISETI R3, R1, 3, LT, P1
		@P1 BRA outer
		EXIT
	`)
	blocks := BasicBlocks(p)
	in := loopBlocks(blocks)
	// Everything from "outer" to the second branch is loop body; the
	// entry (MVI R1) is not.
	if in[0] {
		t.Error("entry in loop")
	}
	marked := 0
	for _, b := range in {
		if b {
			marked++
		}
	}
	if marked < 2 {
		t.Errorf("nested loops: only %d blocks marked", marked)
	}
	// pc 1 (MVI R2, outer header) must be in the outer loop.
	for bi, b := range blocks {
		if b.Start <= 1 && 1 < b.End && !in[bi] {
			t.Error("outer header not marked")
		}
	}
}
