package stl

import (
	"bytes"
	"errors"
	"fmt"
	"os"

	"gpustl/internal/journal"
)

// MaxSTLFileBytes caps how large an STL file ReadSTLFile will load.
// Real libraries are kilobytes; the cap only exists so a wrong path (or
// a hostile file) fails fast instead of exhausting memory.
const MaxSTLFileBytes = 64 << 20

// WriteSTLFile writes the STL durably: serialized to a temp file,
// fsync'd, renamed over path, directory fsync'd — then a checksum
// sidecar (path + ".sum", CRC32C and size) is written the same way so
// `stlcompact -fsck` and ReadSTLFile can detect later corruption. A
// crash mid-write leaves either the old artifact or the new one, never
// a torn mix.
func WriteSTLFile(path string, s *STL) error {
	var buf bytes.Buffer
	if err := WriteSTL(&buf, s); err != nil {
		return err
	}
	if err := journal.WriteFileAtomic(path, buf.Bytes()); err != nil {
		return fmt.Errorf("stl: writing %s: %w", path, err)
	}
	if err := journal.WriteSum(path, buf.Bytes()); err != nil {
		return fmt.Errorf("stl: writing checksum for %s: %w", path, err)
	}
	return nil
}

// ReadSTLFile reads an STL written by WriteSTLFile (or any WriteSTL
// output). When a checksum sidecar exists the file is verified against
// it first, so silent corruption surfaces as an integrity error instead
// of a confusing parse failure; a missing sidecar is fine — files from
// older builds or other tools have none.
func ReadSTLFile(path string) (*STL, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("stl: %w", err)
	}
	if fi.Size() > MaxSTLFileBytes {
		return nil, fmt.Errorf("stl: %s: input exceeds limit: %d bytes, max %d",
			path, fi.Size(), MaxSTLFileBytes)
	}
	if err := VerifySTLFile(path); err != nil && !errors.Is(err, journal.ErrNoSum) {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("stl: %w", err)
	}
	s, err := ReadSTL(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("stl: %s: %w", path, err)
	}
	return s, nil
}

// VerifySTLFile checks path against its checksum sidecar. It returns an
// error wrapping journal.ErrNoSum when no sidecar exists.
func VerifySTLFile(path string) error {
	return journal.VerifyFileSum(path)
}
