package stl

import (
	"bytes"
	"strings"
	"testing"
)

// validPTPSeed is a round-trippable PTP file, built once so the fuzz
// corpus starts from accepted input rather than only rejections.
func validPTPSeed(t testing.TB) string {
	t.Helper()
	p, err := ReadPTP(strings.NewReader(`{
		"name": "seed",
		"target": "SP",
		"kernel": {"Blocks": 2, "ThreadsPerBlock": 64},
		"dataBase": 4096,
		"dataWords": [1, 2, 3],
		"sbs": [{"Start": 0, "End": 3, "DataOff": 0, "DataLen": 3, "AddrInstr": 0}],
		"program": "MVI R1, 4096\nIADD R2, R1, R1\nGST [R2+0], R1\nEXIT"
	}`))
	if err != nil {
		t.Fatalf("seed PTP rejected: %v", err)
	}
	var buf bytes.Buffer
	if err := WritePTP(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// FuzzReadPTP checks the PTP reader never panics on arbitrary bytes and
// that whatever it accepts survives a write/read round trip.
func FuzzReadPTP(f *testing.F) {
	f.Add(validPTPSeed(f))
	f.Add(`{"name":"x","target":"DU","kernel":{"Blocks":1,"ThreadsPerBlock":32},"program":"EXIT"}`)
	f.Add(`{"name":"x","target":"nope","program":""}`)
	f.Add(`{"sbs":[{"Start":-1,"End":99}]}`)
	f.Add(`{`)
	f.Add("\x00\xff")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ReadPTP(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WritePTP(&buf, p); err != nil {
			t.Fatalf("accepted PTP does not re-serialize: %v", err)
		}
		q, err := ReadPTP(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("serialized PTP does not re-read: %v\n%s", err, buf.String())
		}
		if q.Name != p.Name || q.Target != p.Target || len(q.Prog) != len(p.Prog) ||
			len(q.SBs) != len(p.SBs) || len(q.Data.Words) != len(p.Data.Words) {
			t.Fatalf("round trip changed the PTP: %+v != %+v", q, p)
		}
	})
}

// FuzzReadSTL checks the STL reader never panics and that accepted
// libraries survive a write/read round trip.
func FuzzReadSTL(f *testing.F) {
	seed := validPTPSeed(f)
	f.Add(`{"ptps":[` + seed + `]}`)
	f.Add(`{"ptps":[]}`)
	f.Add(`{"ptps":[{"name":"a"},{"name":"a"}]}`)
	f.Add(`{"ptps":null}`)
	f.Add(`{`)
	f.Add("\x00\xff")
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ReadSTL(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteSTL(&buf, s); err != nil {
			t.Fatalf("accepted STL does not re-serialize: %v", err)
		}
		s2, err := ReadSTL(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("serialized STL does not re-read: %v", err)
		}
		if len(s2.PTPs) != len(s.PTPs) {
			t.Fatalf("round trip changed PTP count: %d != %d", len(s2.PTPs), len(s.PTPs))
		}
	})
}
