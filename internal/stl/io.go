package stl

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"gpustl/internal/asm"
	"gpustl/internal/circuits"
)

// Hostile-input caps. STL files are hand-editable and may arrive over
// the network (the distributed fault-simulation transport), so the
// readers bound every unbounded-length field before allocating for it.
// Real STLs sit orders of magnitude below these; an input that exceeds
// one is malformed or malicious, and the reader says so explicitly
// instead of ballooning memory.
const (
	// MaxProgramBytes caps one PTP's assembly text.
	MaxProgramBytes = 1 << 20
	// MaxDataWords caps one PTP's input-data segment (words).
	MaxDataWords = 1 << 20
	// MaxSBCount caps one PTP's Small Block (and protected-region) list.
	MaxSBCount = 1 << 16
	// MaxPTPCount caps an STL's PTP list.
	MaxPTPCount = 4096
)

// ptpJSON is the on-disk representation of a PTP: JSON metadata with the
// program embedded as assembly text, so saved PTPs stay human-readable and
// hand-editable.
type ptpJSON struct {
	Name      string       `json:"name"`
	Target    string       `json:"target"`
	Kernel    KernelConfig `json:"kernel"`
	DataBase  uint32       `json:"dataBase,omitempty"`
	DataWords []uint32     `json:"dataWords,omitempty"`
	SBs       []SB         `json:"sbs,omitempty"`
	Protected []Region     `json:"protected,omitempty"`
	Program   string       `json:"program"`
}

// WritePTP serializes the PTP as JSON with the program as assembly text.
func WritePTP(w io.Writer, p *PTP) error {
	if err := p.Validate(); err != nil {
		return err
	}
	j := ptpJSON{
		Name:      p.Name,
		Target:    p.Target.String(),
		Kernel:    p.Kernel,
		DataBase:  p.Data.Base,
		DataWords: p.Data.Words,
		SBs:       p.SBs,
		Protected: p.Protected,
		Program:   asm.Disassemble(p.Prog),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(j)
}

// ReadPTP parses a PTP written by WritePTP.
func ReadPTP(r io.Reader) (*PTP, error) {
	var j ptpJSON
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, fmt.Errorf("stl: decoding PTP: %w", err)
	}
	switch {
	case len(j.Program) > MaxProgramBytes:
		return nil, fmt.Errorf("stl: PTP %s: input exceeds limit: program text is %d bytes, max %d",
			j.Name, len(j.Program), MaxProgramBytes)
	case len(j.DataWords) > MaxDataWords:
		return nil, fmt.Errorf("stl: PTP %s: input exceeds limit: %d data words, max %d",
			j.Name, len(j.DataWords), MaxDataWords)
	case len(j.SBs) > MaxSBCount:
		return nil, fmt.Errorf("stl: PTP %s: input exceeds limit: %d SBs, max %d",
			j.Name, len(j.SBs), MaxSBCount)
	case len(j.Protected) > MaxSBCount:
		return nil, fmt.Errorf("stl: PTP %s: input exceeds limit: %d protected regions, max %d",
			j.Name, len(j.Protected), MaxSBCount)
	}
	var target circuits.ModuleKind
	found := false
	for k := circuits.ModuleKind(0); int(k) < circuits.NumModuleKinds; k++ {
		if k.String() == j.Target {
			target = k
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("stl: unknown target module %q", j.Target)
	}
	prog, err := asm.Assemble(j.Program)
	if err != nil {
		return nil, fmt.Errorf("stl: assembling PTP %s: %w", j.Name, err)
	}
	p := &PTP{
		Name:      j.Name,
		Target:    target,
		Prog:      prog,
		Kernel:    j.Kernel,
		Data:      DataSegment{Base: j.DataBase, Words: j.DataWords},
		SBs:       j.SBs,
		Protected: j.Protected,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// stlJSON wraps an ordered list of PTPs.
type stlJSON struct {
	PTPs []json.RawMessage `json:"ptps"`
}

// WriteSTL serializes a whole STL.
func WriteSTL(w io.Writer, s *STL) error {
	var j stlJSON
	for _, p := range s.PTPs {
		var buf bytes.Buffer
		if err := WritePTP(&buf, p); err != nil {
			return err
		}
		j.PTPs = append(j.PTPs, json.RawMessage(buf.Bytes()))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(j)
}

// ReadSTL parses an STL written by WriteSTL. It rejects an empty PTP
// list and duplicate PTP names: downstream consumers (checkpoints,
// reports) key PTPs by name, so both would fail confusingly later.
func ReadSTL(r io.Reader) (*STL, error) {
	var j stlJSON
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, fmt.Errorf("stl: decoding STL: %w", err)
	}
	if len(j.PTPs) == 0 {
		return nil, fmt.Errorf("stl: STL has no PTPs")
	}
	if len(j.PTPs) > MaxPTPCount {
		return nil, fmt.Errorf("stl: input exceeds limit: %d PTPs, max %d", len(j.PTPs), MaxPTPCount)
	}
	out := &STL{}
	seen := make(map[string]int, len(j.PTPs))
	for i, raw := range j.PTPs {
		p, err := ReadPTP(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("stl: PTP %d: %w", i, err)
		}
		if prev, dup := seen[p.Name]; dup {
			return nil, fmt.Errorf("stl: duplicate PTP name %q (entries %d and %d)",
				p.Name, prev, i)
		}
		seen[p.Name] = i
		out.PTPs = append(out.PTPs, p)
	}
	return out, nil
}
