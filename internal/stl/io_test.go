package stl

import (
	"bytes"
	"strings"
	"testing"

	"gpustl/internal/circuits"
)

func samplePTP(t *testing.T) *PTP {
	t.Helper()
	p := &PTP{
		Name:   "sample",
		Target: circuits.ModuleDU,
		Prog: prog(t, `
			S2R  R0, SR_TID
			SHLI R1, R0, 2
			MVI  R2, 131072       ; data base
			IADD R3, R2, R1
			GLD  R4, [R3+0]
			IADDI R4, R4, 1
			GST  [R1+0], R4
			EXIT`),
		Kernel:    KernelConfig{Blocks: 1, ThreadsPerBlock: 32},
		Data:      DataSegment{Base: 131072, Words: []uint32{1, 2, 3, 4}},
		SBs:       []SB{{Start: 2, End: 7, DataOff: 0, DataLen: 4, AddrInstr: 2}},
		Protected: []Region{{Start: 0, End: 2}},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPTPRoundTrip(t *testing.T) {
	p := samplePTP(t)
	var buf bytes.Buffer
	if err := WritePTP(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadPTP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || q.Target != p.Target || q.Kernel != p.Kernel {
		t.Errorf("metadata: %+v", q)
	}
	if len(q.Prog) != len(p.Prog) {
		t.Fatalf("program length %d != %d", len(q.Prog), len(p.Prog))
	}
	for i := range p.Prog {
		if q.Prog[i] != p.Prog[i] {
			t.Errorf("instruction %d: %+v != %+v", i, q.Prog[i], p.Prog[i])
		}
	}
	if len(q.Data.Words) != 4 || q.Data.Base != p.Data.Base {
		t.Errorf("data: %+v", q.Data)
	}
	if len(q.SBs) != 1 || q.SBs[0] != p.SBs[0] {
		t.Errorf("SBs: %+v", q.SBs)
	}
	if len(q.Protected) != 1 || q.Protected[0] != p.Protected[0] {
		t.Errorf("protected: %+v", q.Protected)
	}
}

func TestPTPWriteIsReadable(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePTP(&buf, samplePTP(t)); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	// The program must be embedded as assembly text.
	if !strings.Contains(s, "S2R R0, SR_TID") {
		t.Errorf("program not human-readable:\n%s", s)
	}
}

func TestReadPTPErrors(t *testing.T) {
	cases := []string{
		"",
		"{",
		`{"name":"x","target":"NOPE","kernel":{"Blocks":1,"ThreadsPerBlock":32},"program":"EXIT"}`,
		`{"name":"x","target":"DU","kernel":{"Blocks":1,"ThreadsPerBlock":32},"program":"BOGUS"}`,
		`{"name":"x","target":"DU","kernel":{"Blocks":0,"ThreadsPerBlock":32},"program":"EXIT"}`,
	}
	for _, src := range cases {
		if _, err := ReadPTP(strings.NewReader(src)); err == nil {
			t.Errorf("ReadPTP(%q) succeeded", src)
		}
	}
}

func TestSTLRoundTrip(t *testing.T) {
	s := &STL{PTPs: []*PTP{samplePTP(t), samplePTP(t)}}
	s.PTPs[1].Name = "second"
	var buf bytes.Buffer
	if err := WriteSTL(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSTL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.PTPs) != 2 || got.PTPs[0].Name != "sample" || got.PTPs[1].Name != "second" {
		t.Fatalf("STL: %+v", got.PTPs)
	}
	if got.TotalSize() != s.TotalSize() {
		t.Errorf("size %d != %d", got.TotalSize(), s.TotalSize())
	}
}

func TestWritePTPRejectsInvalid(t *testing.T) {
	p := samplePTP(t)
	p.Kernel.Blocks = 0
	var buf bytes.Buffer
	if err := WritePTP(&buf, p); err == nil {
		t.Fatal("invalid PTP serialized")
	}
}
