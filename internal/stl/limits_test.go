package stl

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpustl/internal/journal"
)

func TestReadPTPRejectsOversizedFields(t *testing.T) {
	base := func() ptpJSON {
		return ptpJSON{
			Name:   "big",
			Target: "SP",
			Kernel: KernelConfig{Blocks: 1, ThreadsPerBlock: 32},
		}
	}
	cases := []struct {
		name string
		mut  func(*ptpJSON)
	}{
		{"program", func(j *ptpJSON) { j.Program = strings.Repeat("NOP\n", MaxProgramBytes/4+1) }},
		{"dataWords", func(j *ptpJSON) { j.DataWords = make([]uint32, MaxDataWords+1) }},
		{"sbs", func(j *ptpJSON) { j.SBs = make([]SB, MaxSBCount+1) }},
		{"protected", func(j *ptpJSON) { j.Protected = make([]Region, MaxSBCount+1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j := base()
			tc.mut(&j)
			data, err := json.Marshal(j)
			if err != nil {
				t.Fatal(err)
			}
			_, err = ReadPTP(bytes.NewReader(data))
			if err == nil || !strings.Contains(err.Error(), "input exceeds limit") {
				t.Fatalf("oversized %s accepted: %v", tc.name, err)
			}
		})
	}
}

func TestReadSTLRejectsTooManyPTPs(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`{"ptps":[`)
	for i := 0; i <= MaxPTPCount; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`{}`)
	}
	sb.WriteString(`]}`)
	_, err := ReadSTL(strings.NewReader(sb.String()))
	if err == nil || !strings.Contains(err.Error(), "input exceeds limit") {
		t.Fatalf("oversized STL accepted: %v", err)
	}
}

func TestSTLFileRoundTripWithChecksum(t *testing.T) {
	p, err := ReadPTP(strings.NewReader(validPTPSeed(t)))
	if err != nil {
		t.Fatal(err)
	}
	s := &STL{PTPs: []*PTP{p}}
	path := filepath.Join(t.TempDir(), "lib.stl")
	if err := WriteSTLFile(path, s); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(journal.SumPath(path)); err != nil {
		t.Fatalf("no checksum sidecar: %v", err)
	}
	got, err := ReadSTLFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.PTPs) != 1 || got.PTPs[0].Name != p.Name {
		t.Fatalf("round trip: %+v", got.PTPs)
	}

	// Silent corruption is caught by the sidecar before the parser runs.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSTLFile(path); err == nil || !strings.Contains(err.Error(), "corrupted") {
		t.Fatalf("corrupted STL read back: %v", err)
	}

	// Files without a sidecar (older builds, other tools) still read.
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(journal.SumPath(path)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSTLFile(path); err != nil {
		t.Fatalf("sidecar-less STL rejected: %v", err)
	}
}
