// Package stl models Self-Test Libraries for the GPU: Parallel Test
// Programs (PTPs), their launch configuration and input data, and the
// program analyses the compaction method's first stage needs — basic
// blocks, the control-flow graph, Admissible Regions for Compaction (ARCs)
// and Small Block (SB) segmentation.
package stl

import (
	"errors"
	"fmt"

	"gpustl/internal/circuits"
	"gpustl/internal/isa"
)

// KernelConfig is a PTP's launch configuration.
type KernelConfig struct {
	Blocks          int
	ThreadsPerBlock int
}

// DataSegment is the PTP's input data in global memory.
type DataSegment struct {
	Base  uint32 // byte address, word aligned
	Words []uint32
}

// SB is a Small Block: a short instruction sequence that loads test
// operands, executes an operation, and propagates the result toward an
// observable point — the removal granularity of the reduction stage.
type SB struct {
	Start, End int // instruction index range [Start, End)

	// Input data owned by this SB within the PTP's data segment (words);
	// DataLen == 0 when the SB has no memory inputs.
	DataOff, DataLen int
	// AddrInstr indexes the instruction whose immediate holds the SB's
	// data address (Data.Base + 4*DataOff); -1 when not applicable. The
	// reassembly stage patches it after data relocation.
	AddrInstr int
}

// Len returns the SB's instruction count.
func (s SB) Len() int { return s.End - s.Start }

// PTP is one Parallel Test Program of an STL.
type PTP struct {
	Name   string
	Target circuits.ModuleKind
	Prog   []isa.Instruction
	Kernel KernelConfig
	Data   DataSegment

	// SBs is the Small Block structure. Generators provide it as ground
	// truth; SegmentSBs derives it from the code when absent.
	SBs []SB

	// Protected marks instruction ranges the compaction must never touch
	// (prologue/epilogue and other carefully crafted test code — the
	// paper's "other regions ... remain unaffected").
	Protected []Region
}

// Size returns the PTP size in instructions (the paper's size metric).
func (p *PTP) Size() int { return len(p.Prog) }

// Clone deep-copies the PTP.
func (p *PTP) Clone() *PTP {
	q := &PTP{Name: p.Name, Target: p.Target, Kernel: p.Kernel}
	q.Prog = append([]isa.Instruction(nil), p.Prog...)
	q.Data = DataSegment{Base: p.Data.Base, Words: append([]uint32(nil), p.Data.Words...)}
	q.SBs = append([]SB(nil), p.SBs...)
	q.Protected = append([]Region(nil), p.Protected...)
	return q
}

// Validate checks structural invariants.
func (p *PTP) Validate() error {
	if len(p.Prog) == 0 {
		return errors.New("stl: empty PTP")
	}
	if p.Kernel.Blocks <= 0 || p.Kernel.ThreadsPerBlock <= 0 || p.Kernel.ThreadsPerBlock%32 != 0 {
		return fmt.Errorf("stl: %s: bad kernel config %+v", p.Name, p.Kernel)
	}
	prev := -1
	for i, sb := range p.SBs {
		if sb.Start < 0 || sb.End > len(p.Prog) || sb.Start >= sb.End {
			return fmt.Errorf("stl: %s: SB %d range [%d,%d) invalid", p.Name, i, sb.Start, sb.End)
		}
		if sb.Start < prev {
			return fmt.Errorf("stl: %s: SB %d overlaps previous", p.Name, i)
		}
		prev = sb.End
		if sb.DataLen > 0 {
			if sb.DataOff < 0 || sb.DataOff+sb.DataLen > len(p.Data.Words) {
				return fmt.Errorf("stl: %s: SB %d data range invalid", p.Name, i)
			}
			if sb.AddrInstr < sb.Start || sb.AddrInstr >= sb.End {
				return fmt.Errorf("stl: %s: SB %d AddrInstr outside SB", p.Name, i)
			}
		}
	}
	return nil
}

// STL is a Self-Test Library: an ordered set of PTPs.
type STL struct {
	PTPs []*PTP
}

// TotalSize returns the summed instruction count.
func (s *STL) TotalSize() int {
	n := 0
	for _, p := range s.PTPs {
		n += p.Size()
	}
	return n
}

// ByName returns the PTP with the given name.
func (s *STL) ByName(name string) *PTP {
	for _, p := range s.PTPs {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Basic blocks and control flow.

// BasicBlock is a maximal single-entry, single-exit straight-line sequence.
type BasicBlock struct {
	Start, End int   // instruction range [Start, End)
	Succs      []int // successor block indices
}

// BasicBlocks partitions the program into basic blocks and builds the CFG.
func BasicBlocks(prog []isa.Instruction) []BasicBlock {
	n := len(prog)
	if n == 0 {
		return nil
	}
	leader := make([]bool, n+1)
	leader[0] = true
	leader[n] = true
	target := func(pc int, imm int32) int { return pc + 1 + int(imm) }
	for pc, in := range prog {
		switch in.Op {
		case isa.OpBRA, isa.OpCAL, isa.OpSSY:
			tgt := target(pc, in.Imm)
			if tgt >= 0 && tgt <= n {
				leader[tgt] = true
			}
			if in.Op != isa.OpSSY && pc+1 <= n {
				leader[pc+1] = true
			}
		case isa.OpRET, isa.OpEXIT:
			if pc+1 <= n {
				leader[pc+1] = true
			}
		}
	}
	// Build blocks.
	var blocks []BasicBlock
	blockAt := make([]int, n+1)
	start := 0
	for pc := 1; pc <= n; pc++ {
		if leader[pc] {
			blocks = append(blocks, BasicBlock{Start: start, End: pc})
			start = pc
		}
	}
	for bi, b := range blocks {
		for pc := b.Start; pc < b.End; pc++ {
			blockAt[pc] = bi
		}
	}
	blockAt[n] = len(blocks)
	// Edges.
	for bi := range blocks {
		b := &blocks[bi]
		last := prog[b.End-1]
		addSucc := func(pc int) {
			if pc < 0 || pc >= n {
				return
			}
			t := blockAt[pc]
			for _, s := range b.Succs {
				if s == t {
					return
				}
			}
			b.Succs = append(b.Succs, t)
		}
		switch last.Op {
		case isa.OpBRA:
			addSucc(target(b.End-1, last.Imm))
			if last.Pg != isa.PredAlways {
				addSucc(b.End)
			}
		case isa.OpCAL:
			addSucc(target(b.End-1, last.Imm))
			addSucc(b.End) // the call returns here
		case isa.OpRET, isa.OpEXIT:
			if last.Op == isa.OpEXIT && last.Pg != isa.PredAlways {
				addSucc(b.End) // predicated EXIT falls through
			}
		default:
			addSucc(b.End)
		}
	}
	return blocks
}

// Region is a half-open instruction index range.
type Region struct {
	Start, End int
}

// Len returns the region's instruction count.
func (r Region) Len() int { return r.End - r.Start }

// Contains reports whether pc lies in the region.
func (r Region) Contains(pc int) bool { return pc >= r.Start && pc < r.End }

// ARCs identifies the Admissible Regions for Compaction: maximal runs of
// plain SIMT instructions (no control flow except NOP) inside basic blocks
// that are not part of any loop. Blocks in parametric loops and all
// control-flow instructions are excluded, as in stage 1 of the paper.
func ARCs(prog []isa.Instruction) []Region {
	blocks := BasicBlocks(prog)
	inLoop := loopBlocks(blocks)
	var regions []Region
	for bi, b := range blocks {
		if inLoop[bi] {
			continue
		}
		start := -1
		for pc := b.Start; pc < b.End; pc++ {
			op := prog[pc].Op
			plain := isa.ClassOf(op) != isa.ClassCtrl || op == isa.OpNOP
			if plain && prog[pc].Pg == isa.PredAlways {
				if start < 0 {
					start = pc
				}
				continue
			}
			if start >= 0 {
				regions = append(regions, Region{Start: start, End: pc})
				start = -1
			}
		}
		if start >= 0 {
			regions = append(regions, Region{Start: start, End: b.End})
		}
	}
	return regions
}

// ARCFraction returns the fraction (0..1) of the program inside ARCs — the
// "ARC (%)" column of Table I.
func ARCFraction(prog []isa.Instruction) float64 {
	if len(prog) == 0 {
		return 0
	}
	n := 0
	for _, r := range ARCs(prog) {
		n += r.Len()
	}
	return float64(n) / float64(len(prog))
}

// ARCs returns the PTP's admissible regions: the raw program analysis
// minus any protected ranges.
func (p *PTP) ARCs() []Region {
	raw := ARCs(p.Prog)
	if len(p.Protected) == 0 {
		return raw
	}
	var out []Region
	for _, r := range raw {
		out = append(out, subtractRegions(r, p.Protected)...)
	}
	return out
}

// subtractRegions removes the protected ranges from r, returning the
// surviving sub-regions in order.
func subtractRegions(r Region, prot []Region) []Region {
	cur := []Region{r}
	for _, p := range prot {
		var next []Region
		for _, c := range cur {
			if p.End <= c.Start || p.Start >= c.End {
				next = append(next, c)
				continue
			}
			if p.Start > c.Start {
				next = append(next, Region{Start: c.Start, End: p.Start})
			}
			if p.End < c.End {
				next = append(next, Region{Start: p.End, End: c.End})
			}
		}
		cur = next
	}
	return cur
}

// ARCFraction returns the fraction (0..1) of the PTP inside its admissible
// regions — the "ARC (%)" column of Table I.
func (p *PTP) ARCFraction() float64 {
	if len(p.Prog) == 0 {
		return 0
	}
	n := 0
	for _, r := range p.ARCs() {
		n += r.Len()
	}
	return float64(n) / float64(len(p.Prog))
}

// SegmentSBs derives the Small Block structure of the ARC regions from the
// code: within each region, an SB closes right after an instruction that
// propagates a result to an observable point (a global or shared store);
// trailing instructions with no store form a final SB. Generators normally
// supply ground-truth SBs; this derives an equivalent segmentation for
// externally supplied PTPs.
func SegmentSBs(prog []isa.Instruction, regions []Region) []SB {
	var sbs []SB
	for _, r := range regions {
		start := r.Start
		for pc := r.Start; pc < r.End; pc++ {
			if op := prog[pc].Op; op == isa.OpGST || op == isa.OpSST {
				sbs = append(sbs, SB{Start: start, End: pc + 1, AddrInstr: -1})
				start = pc + 1
			}
		}
		if start < r.End {
			sbs = append(sbs, SB{Start: start, End: r.End, AddrInstr: -1})
		}
	}
	return sbs
}
