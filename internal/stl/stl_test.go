package stl

import (
	"testing"

	"gpustl/internal/asm"
	"gpustl/internal/circuits"
	"gpustl/internal/isa"
)

func prog(t *testing.T, src string) []isa.Instruction {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBasicBlocksStraightLine(t *testing.T) {
	p := prog(t, "MVI R1, 1\nIADD R2, R1, R1\nGST [R2+0], R1\nEXIT")
	bbs := BasicBlocks(p)
	if len(bbs) != 1 {
		t.Fatalf("blocks = %d, want 1", len(bbs))
	}
	if bbs[0].Start != 0 || bbs[0].End != 4 || len(bbs[0].Succs) != 0 {
		t.Fatalf("block: %+v", bbs[0])
	}
}

func TestBasicBlocksBranch(t *testing.T) {
	p := prog(t, `
		ISETI R1, R0, 0, EQ, P0
		@P0 BRA skip
		MVI R2, 1
	skip:
		EXIT
	`)
	bbs := BasicBlocks(p)
	if len(bbs) != 3 {
		t.Fatalf("blocks = %d, want 3: %+v", len(bbs), bbs)
	}
	// Block 0 ends at the predicated branch with both successors.
	if len(bbs[0].Succs) != 2 {
		t.Fatalf("block 0 succs: %v", bbs[0].Succs)
	}
}

func TestBasicBlocksLoop(t *testing.T) {
	p := prog(t, `
		MVI R1, 0
	loop:
		IADDI R1, R1, 1
		ISETI R2, R1, 10, LT, P0
		@P0 BRA loop
		EXIT
	`)
	bbs := BasicBlocks(p)
	inLoop := loopBlocks(bbs)
	var loops int
	for _, l := range inLoop {
		if l {
			loops++
		}
	}
	if loops == 0 {
		t.Fatal("no loop blocks detected")
	}
	// The entry block (MVI) must not be in the loop.
	if inLoop[0] {
		t.Error("entry block marked in-loop")
	}
}

func TestARCsStraightLine(t *testing.T) {
	p := prog(t, "MVI R1, 1\nIADD R2, R1, R1\nGST [R2+0], R1\nEXIT")
	rs := ARCs(p)
	if len(rs) != 1 || rs[0].Start != 0 || rs[0].End != 3 {
		t.Fatalf("ARCs = %+v", rs)
	}
	f := ARCFraction(p)
	if f < 0.74 || f > 0.76 {
		t.Fatalf("fraction = %f, want 0.75", f)
	}
}

func TestARCsExcludeLoops(t *testing.T) {
	p := prog(t, `
		MVI R1, 0          ; admissible
		MVI R2, 0          ; admissible
	loop:
		IADDI R1, R1, 1    ; in loop: excluded
		ISETI R3, R1, 4, LT, P0
		@P0 BRA loop
		IADD R4, R1, R2    ; after loop: admissible
		GST [R4+0], R1     ; admissible
		EXIT
	`)
	rs := ARCs(p)
	if len(rs) != 2 {
		t.Fatalf("ARCs = %+v, want 2 regions", rs)
	}
	if rs[0].Start != 0 || rs[0].End != 2 {
		t.Errorf("region 0 = %+v", rs[0])
	}
	if rs[1].Start != 5 || rs[1].End != 7 {
		t.Errorf("region 1 = %+v", rs[1])
	}
	for _, r := range rs {
		for pc := r.Start; pc < r.End; pc++ {
			if isa.ClassOf(p[pc].Op) == isa.ClassCtrl {
				t.Errorf("control op %v inside ARC", p[pc].Op)
			}
		}
	}
}

func TestARCsExcludePredicated(t *testing.T) {
	p := prog(t, `
		MVI R1, 1
		@P0 IADDI R1, R1, 1  ; predicated: not plainly parallel, excluded
		MVI R2, 2
		EXIT
	`)
	rs := ARCs(p)
	if len(rs) != 2 || rs[0].Len() != 1 || rs[1].Len() != 1 {
		t.Fatalf("ARCs = %+v", rs)
	}
}

func TestARCsExcludeBarriers(t *testing.T) {
	p := prog(t, "MVI R1, 1\nBAR\nMVI R2, 2\nEXIT")
	rs := ARCs(p)
	if len(rs) != 2 {
		t.Fatalf("ARCs = %+v", rs)
	}
	for _, r := range rs {
		if r.Contains(1) {
			t.Error("BAR inside ARC")
		}
	}
}

func TestSegmentSBs(t *testing.T) {
	p := prog(t, `
		MVI R1, 5          ; SB0: load
		MVI R2, 7          ; SB0: load
		IADD R3, R1, R2    ; SB0: op
		GST [R0+0], R3     ; SB0: propagate
		MVI R1, 9          ; SB1
		IMUL R3, R1, R2
		GST [R0+4], R3
		MVI R9, 1          ; SB2 (no store: trailing)
		EXIT
	`)
	rs := ARCs(p)
	sbs := SegmentSBs(p, rs)
	if len(sbs) != 3 {
		t.Fatalf("SBs = %+v, want 3", sbs)
	}
	if sbs[0].Start != 0 || sbs[0].End != 4 {
		t.Errorf("SB0 = %+v", sbs[0])
	}
	if sbs[1].Start != 4 || sbs[1].End != 7 {
		t.Errorf("SB1 = %+v", sbs[1])
	}
	if sbs[2].Start != 7 || sbs[2].End != 8 {
		t.Errorf("SB2 = %+v", sbs[2])
	}
}

func TestPTPValidate(t *testing.T) {
	base := &PTP{
		Name:   "t",
		Target: circuits.ModuleSP,
		Prog:   prog(t, "MVI R1, 1\nGST [R0+0], R1\nEXIT"),
		Kernel: KernelConfig{Blocks: 1, ThreadsPerBlock: 32},
		SBs:    []SB{{Start: 0, End: 2, AddrInstr: -1}},
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid PTP rejected: %v", err)
	}

	bad := base.Clone()
	bad.Prog = nil
	if bad.Validate() == nil {
		t.Error("empty program accepted")
	}

	bad = base.Clone()
	bad.Kernel.ThreadsPerBlock = 33
	if bad.Validate() == nil {
		t.Error("bad kernel accepted")
	}

	bad = base.Clone()
	bad.SBs = []SB{{Start: 0, End: 99, AddrInstr: -1}}
	if bad.Validate() == nil {
		t.Error("SB out of range accepted")
	}

	bad = base.Clone()
	bad.SBs = []SB{{Start: 0, End: 2, AddrInstr: -1}, {Start: 1, End: 3, AddrInstr: -1}}
	if bad.Validate() == nil {
		t.Error("overlapping SBs accepted")
	}

	bad = base.Clone()
	bad.Data = DataSegment{Base: 4096, Words: []uint32{1, 2}}
	bad.SBs = []SB{{Start: 0, End: 2, DataOff: 0, DataLen: 5, AddrInstr: 0}}
	if bad.Validate() == nil {
		t.Error("SB data overrun accepted")
	}
}

func TestPTPCloneIndependence(t *testing.T) {
	p := &PTP{
		Name:   "orig",
		Prog:   prog(t, "MVI R1, 1\nEXIT"),
		Kernel: KernelConfig{Blocks: 1, ThreadsPerBlock: 32},
		Data:   DataSegment{Base: 0, Words: []uint32{42}},
		SBs:    []SB{{Start: 0, End: 1, AddrInstr: -1}},
	}
	q := p.Clone()
	q.Prog[0].Imm = 99
	q.Data.Words[0] = 7
	q.SBs[0].End = 2
	if p.Prog[0].Imm == 99 || p.Data.Words[0] == 7 || p.SBs[0].End == 2 {
		t.Fatal("clone shares storage with original")
	}
}

func TestSTLAccessors(t *testing.T) {
	s := &STL{PTPs: []*PTP{
		{Name: "a", Prog: make([]isa.Instruction, 10)},
		{Name: "b", Prog: make([]isa.Instruction, 5)},
	}}
	if s.TotalSize() != 15 {
		t.Errorf("TotalSize = %d", s.TotalSize())
	}
	if s.ByName("b") == nil || s.ByName("zzz") != nil {
		t.Error("ByName wrong")
	}
}

func TestBasicBlocksCallSite(t *testing.T) {
	p := prog(t, `
		CAL sub
		EXIT
	sub:
		MVI R1, 1
		RET
	`)
	bbs := BasicBlocks(p)
	if len(bbs) != 3 {
		t.Fatalf("blocks = %d: %+v", len(bbs), bbs)
	}
	// CAL block must have two successors: the callee and the return point.
	if len(bbs[0].Succs) != 2 {
		t.Fatalf("CAL succs = %v", bbs[0].Succs)
	}
}
