package trace

import (
	"math/rand"
	"testing"
)

// TestCCIndexProperty checks Lookup against a linear scan over randomly
// generated (but valid: ordered, disjoint) span sets.
func TestCCIndexProperty(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 50; trial++ {
		var spans []Span
		cc := uint64(r.Intn(50))
		for i := 0; i < 1+r.Intn(60); i++ {
			length := uint64(1 + r.Intn(80))
			spans = append(spans, Span{
				Warp: int16(r.Intn(4)), PC: int32(r.Intn(1000)),
				CCStart: cc, CCEnd: cc + length - 1,
			})
			cc += length + uint64(r.Intn(10)) // possible gaps
		}
		idx := (&Collector{Spans: spans}).CCToPC()

		linear := func(q uint64) (int16, int32, bool) {
			for _, s := range spans {
				if q >= s.CCStart && q <= s.CCEnd {
					return s.Warp, s.PC, true
				}
			}
			return 0, 0, false
		}
		for probe := 0; probe < 300; probe++ {
			q := uint64(r.Intn(int(cc) + 20))
			w1, p1, ok1 := idx.Lookup(q)
			w2, p2, ok2 := linear(q)
			if ok1 != ok2 || w1 != w2 || p1 != p2 {
				t.Fatalf("trial %d cc=%d: index (%d,%d,%v) != linear (%d,%d,%v)",
					trial, q, w1, p1, ok1, w2, p2, ok2)
			}
		}
	}
}

func TestCCIndexEmpty(t *testing.T) {
	idx := (&Collector{}).CCToPC()
	if _, _, ok := idx.Lookup(0); ok {
		t.Fatal("empty index resolved a cycle")
	}
}
