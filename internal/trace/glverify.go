package trace

import (
	"fmt"

	"gpustl/internal/circuits"
	"gpustl/internal/fault"
	"gpustl/internal/isa"
	"gpustl/internal/netlist"
)

// GLReport summarizes a gate-level logic simulation of a traced pattern
// stream: how many patterns were replayed on the netlist and whether the
// gate-level outputs agree with the reference (golden) decode/datapath
// semantics at every cycle.
type GLReport struct {
	Patterns   int
	Mismatches int
	// First mismatch, if any, for debugging.
	FirstIndex int
	FirstWant  uint64
	FirstGot   uint64
}

// OK reports whether the two abstraction levels agreed everywhere.
func (r *GLReport) OK() bool { return r.Mismatches == 0 }

// String renders a one-line summary.
func (r *GLReport) String() string {
	if r.OK() {
		return fmt.Sprintf("GL verify: %d patterns, all outputs match", r.Patterns)
	}
	return fmt.Sprintf("GL verify: %d patterns, %d MISMATCHES (first at %d: got %#x want %#x)",
		r.Patterns, r.Mismatches, r.FirstIndex, r.FirstGot, r.FirstWant)
}

// VerifyGL performs the gate-level logic simulation of the paper's stage 2
// on an extracted pattern stream: every pattern is replayed on the
// module's netlist, and the resulting primary outputs are cross-checked
// against the golden reference model of the module (the RTL-vs-GL
// consistency the paper's two logic simulations rely on).
//
// For the SP module the checked outputs are the 32-bit result and the
// predicate bit; for the SFU, the 32-bit result word; for the DU, the
// control word, class bits and field extraction.
func VerifyGL(m *circuits.Module, patterns []fault.TimedPattern) (*GLReport, error) {
	ev, err := netlist.NewEvaluator(m.NL)
	if err != nil {
		return nil, fmt.Errorf("trace: VerifyGL on %v: %w", m.Kind, err)
	}
	rep := &GLReport{Patterns: len(patterns), FirstIndex: -1}
	numIn := len(m.NL.Inputs)
	inputs := make([]uint64, numIn)

	for blk := 0; blk < len(patterns); blk += 64 {
		end := blk + 64
		if end > len(patterns) {
			end = len(patterns)
		}
		n := end - blk
		for i := range inputs {
			inputs[i] = 0
		}
		for s := 0; s < n; s++ {
			patterns[blk+s].Pat.ApplyTo(inputs, uint(s))
		}
		if err := ev.Run(inputs); err != nil {
			return nil, err
		}

		for s := 0; s < n; s++ {
			got, want, err := compareOne(m, ev, patterns[blk+s].Pat, uint(s))
			if err != nil {
				return nil, err
			}
			if got != want {
				rep.Mismatches++
				if rep.FirstIndex < 0 {
					rep.FirstIndex = blk + s
					rep.FirstGot = got
					rep.FirstWant = want
				}
			}
		}
	}
	return rep, nil
}

// outputBit extracts output index i of pattern slot s from the evaluator.
func outputBit(ev *netlist.Evaluator, i int, slot uint) uint64 {
	return ev.Output(i) >> slot & 1
}

// compareOne returns the gate-level and golden output words of one pattern.
func compareOne(m *circuits.Module, ev *netlist.Evaluator, pat circuits.Pattern, slot uint) (got, want uint64, err error) {
	switch m.Kind {
	case circuits.ModuleSP:
		fnRaw, condRaw, a, b, c := circuits.DecodeSPPattern(pat)
		// Outputs: r[0..31] then pr.
		for i := 0; i < 32; i++ {
			got |= outputBit(ev, i, slot) << uint(i)
		}
		got |= outputBit(ev, 32, slot) << 32
		if int(fnRaw) >= circuits.NumSPFns || int(condRaw) >= isa.NumConds {
			// Outside the golden model's domain: compare the netlist to
			// itself (vacuously consistent).
			return got, got, nil
		}
		r, pr := circuits.SPGolden(circuits.SPFn(fnRaw), isa.Cond(condRaw), a, b, c)
		want = uint64(r)
		if pr {
			want |= 1 << 32
		}
		return got, want, nil

	case circuits.ModuleSFU:
		fnRaw, a := circuits.DecodeSFUPattern(pat)
		for i := 0; i < 32; i++ {
			got |= outputBit(ev, i, slot) << uint(i)
		}
		if int(fnRaw) >= circuits.NumSFUFns {
			return got, got, nil
		}
		return got, uint64(circuits.SFUGolden(circuits.SFUFn(fnRaw), a)), nil

	case circuits.ModuleFP32:
		fnRaw, a, b, c := circuits.DecodeFP32Pattern(pat)
		for i := 0; i < 32; i++ {
			got |= outputBit(ev, i, slot) << uint(i)
		}
		if int(fnRaw) >= circuits.NumFP32Fns {
			return got, got, nil
		}
		return got, uint64(circuits.FP32Golden(circuits.FP32Fn(fnRaw), a, b, c)), nil

	case circuits.ModuleDU:
		word, pc := circuits.DecodeDUPattern(pat)
		g := circuits.DUGolden(isa.Word(word), int(pc))
		// Compare a digest of the named outputs: valid, the 5 class bits
		// and the 16-bit control word.
		for i, name := range m.NL.OutputNames {
			switch name {
			case "valid":
				got |= outputBit(ev, i, slot)
				if g.Valid {
					want |= 1
				}
			}
		}
		classOff := uint(1)
		ctrlOff := uint(6)
		for i, name := range m.NL.OutputNames {
			for cl := 0; cl < 5; cl++ {
				if name == "class_"+isa.Class(cl).String() {
					got |= outputBit(ev, i, slot) << (classOff + uint(cl))
					if g.Class[cl] {
						want |= 1 << (classOff + uint(cl))
					}
				}
			}
			for bit := 0; bit < 16; bit++ {
				if name == fmt.Sprintf("ctrl[%d]", bit) {
					got |= outputBit(ev, i, slot) << (ctrlOff + uint(bit))
					if g.Ctrl>>uint(bit)&1 == 1 {
						want |= 1 << (ctrlOff + uint(bit))
					}
				}
			}
		}
		return got, want, nil
	}
	return 0, 0, fmt.Errorf("trace: VerifyGL: unsupported module %v", m.Kind)
}
