package trace

import (
	"testing"

	"gpustl/internal/asm"
	"gpustl/internal/circuits"
	"gpustl/internal/fault"
	"gpustl/internal/gpu"
)

// traceModule runs a program collecting patterns for the module kind.
func traceModule(t *testing.T, kind circuits.ModuleKind, src string, tpb int) []fault.TimedPattern {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(kind)
	col.LiteRows = true
	g, err := gpu.New(gpu.DefaultConfig(), col)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(gpu.Kernel{Prog: prog, Blocks: 1, ThreadsPerBlock: tpb}); err != nil {
		t.Fatal(err)
	}
	return col.Patterns
}

const glProg = `
	S2R   R0, SR_TID
	SHLI  R1, R0, 2
	IADDI R2, R0, 123
	IMULI R3, R2, -7
	ISET  R4, R3, R2, LT, P1
	IMAD  R5, R2, R3
	SHR   R6, R5, R0
	NOT   R7, R6
	SIN   R8, R7
	EX2   R9, R8
	GST   [R1+0], R7
	EXIT
`

func TestVerifyGLAllModules(t *testing.T) {
	for _, kind := range []circuits.ModuleKind{circuits.ModuleDU, circuits.ModuleSP, circuits.ModuleSFU} {
		pats := traceModule(t, kind, glProg, 32)
		if len(pats) == 0 {
			t.Fatalf("%v: no patterns", kind)
		}
		m, err := circuits.Build(kind, 0)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := VerifyGL(m, pats)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Errorf("%v: %s", kind, rep)
		}
		if rep.Patterns != len(pats) {
			t.Errorf("%v: verified %d of %d", kind, rep.Patterns, len(pats))
		}
	}
}

// TestVerifyGLOutOfDomain checks that patterns outside the golden model's
// domain (illegal fn encodings, as ATPG can produce) are treated as
// vacuously consistent rather than mismatches.
func TestVerifyGLOutOfDomain(t *testing.T) {
	m, err := circuits.Build(circuits.ModuleSP, 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := fault.TimedPattern{Pat: circuits.EncodeSPPattern(circuits.SPFn(15), 0, 1, 2, 3)}
	rep, err := VerifyGL(m, []fault.TimedPattern{bad})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("out-of-domain fn flagged as mismatch: %s", rep)
	}
}

func TestVerifyGLDigestSensitivity(t *testing.T) {
	// Hand-build a pattern whose golden result is known and check the
	// comparison digest includes the predicate bit.
	p := circuits.EncodeSPPattern(circuits.SPSet, 2 /* LT */, 1, 2, 0)
	m, err := circuits.Build(circuits.ModuleSP, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyGL(m, []fault.TimedPattern{{Pat: p}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("SET pattern mismatch: %s", rep)
	}
}
