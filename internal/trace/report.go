package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gpustl/internal/isa"
)

// WriteReport serializes the Tracing Report as a text file, the form the
// paper's environment exchanges between tools: one line per decoded warp
// instruction with its clock cycle, warp identifier, program counter,
// mnemonic and raw word, followed by the retire spans.
func (c *Collector) WriteReport(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# gpustl tracing report: %d rows, %d spans, %d stores\n",
		len(c.Rows), len(c.Spans), len(c.Stores))
	fmt.Fprintln(bw, "# cc warp pc opcode word")
	for _, r := range c.Rows {
		fmt.Fprintf(bw, "i %d %d %d %s %016x\n", r.CC, r.Warp, r.PC, r.Op, uint64(r.Word))
	}
	fmt.Fprintln(bw, "# ccStart ccEnd warp pc")
	for _, s := range c.Spans {
		fmt.Fprintf(bw, "s %d %d %d %d\n", s.CCStart, s.CCEnd, s.Warp, s.PC)
	}
	return bw.Flush()
}

// ReadReport parses a report written by WriteReport, reconstructing the
// rows and spans (pattern streams travel separately, as VCDE files).
func ReadReport(r io.Reader) (*Collector, error) {
	c := &Collector{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		switch {
		case f[0] == "i" && len(f) == 6:
			cc, err1 := strconv.ParseUint(f[1], 10, 64)
			warp, err2 := strconv.ParseInt(f[2], 10, 16)
			pc, err3 := strconv.ParseInt(f[3], 10, 32)
			op, ok := isa.OpcodeByName(f[4])
			word, err4 := strconv.ParseUint(f[5], 16, 64)
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil || !ok {
				return nil, fmt.Errorf("trace: report line %d malformed", line)
			}
			c.Rows = append(c.Rows, Row{CC: cc, Warp: int16(warp), PC: int32(pc),
				Op: op, Word: isa.Word(word)})
		case f[0] == "s" && len(f) == 5:
			s0, err1 := strconv.ParseUint(f[1], 10, 64)
			s1, err2 := strconv.ParseUint(f[2], 10, 64)
			warp, err3 := strconv.ParseInt(f[3], 10, 16)
			pc, err4 := strconv.ParseInt(f[4], 10, 32)
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
				return nil, fmt.Errorf("trace: report line %d malformed", line)
			}
			c.Spans = append(c.Spans, Span{CCStart: s0, CCEnd: s1,
				Warp: int16(warp), PC: int32(pc)})
		default:
			return nil, fmt.Errorf("trace: report line %d: unexpected %q", line, text)
		}
	}
	return c, sc.Err()
}
