package trace

import (
	"bytes"
	"strings"
	"testing"

	"gpustl/internal/circuits"
)

func TestReportRoundTrip(t *testing.T) {
	col := runWith(t, circuits.ModuleDU)
	var buf bytes.Buffer
	if err := col.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(col.Rows) || len(back.Spans) != len(col.Spans) {
		t.Fatalf("lengths: rows %d/%d spans %d/%d",
			len(back.Rows), len(col.Rows), len(back.Spans), len(col.Spans))
	}
	for i := range col.Rows {
		if back.Rows[i] != col.Rows[i] {
			t.Fatalf("row %d: %+v != %+v", i, back.Rows[i], col.Rows[i])
		}
	}
	for i := range col.Spans {
		if back.Spans[i] != col.Spans[i] {
			t.Fatalf("span %d: %+v != %+v", i, back.Spans[i], col.Spans[i])
		}
	}
	// The round-tripped report rebuilds a working cc index.
	idx := back.CCToPC()
	for _, s := range col.Spans {
		if _, pc, ok := idx.Lookup(s.CCStart); !ok || pc != s.PC {
			t.Fatalf("cc index broken after round trip at cc %d", s.CCStart)
		}
	}
}

func TestReadReportErrors(t *testing.T) {
	cases := []string{
		"i 1 2",           // short row
		"i x 0 0 IADD 0",  // bad cc
		"i 1 0 0 BOGUS 0", // bad opcode
		"s 1 2 3",         // short span
		"q what",          // unknown record
	}
	for _, src := range cases {
		if _, err := ReadReport(strings.NewReader(src)); err == nil {
			t.Errorf("ReadReport(%q) succeeded", src)
		}
	}
}
