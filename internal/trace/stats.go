package trace

import (
	"fmt"
	"sort"
	"strings"

	"gpustl/internal/fault"
	"gpustl/internal/gpu"
	"gpustl/internal/isa"
)

// OpStats is a Monitor that histograms the dynamic instruction mix: how
// many warp-instructions of each opcode were decoded and how many thread
// operations each executed — the data behind Table I-style "all
// instruction formats" coverage claims.
type OpStats struct {
	gpu.NopMonitor

	// Decodes counts warp-instruction decodes per opcode.
	Decodes [isa.NumOpcodes]uint64
	// ThreadOps counts per-thread executions per opcode (ALU/FPU/SFU/mem).
	ThreadOps [isa.NumOpcodes]uint64
	// Stores counts observable writes.
	Stores uint64
	// Engine accumulates the fault-simulation engine's counters across
	// the campaign's runs (fed via RecordEngine from each Report.Stats),
	// so the report shows optimization effectiveness — dedup hit-rate,
	// prescreen-skip ratio — next to the instruction mix.
	Engine fault.SimStats
}

// RecordEngine folds one fault-simulation run's counters into the
// report's engine block.
func (s *OpStats) RecordEngine(st fault.SimStats) {
	s.Engine.Add(st)
}

// Decode implements gpu.Monitor.
func (s *OpStats) Decode(cc uint64, warp, pc int, in isa.Instruction) {
	s.Decodes[in.Op]++
}

// ALUOp implements gpu.Monitor.
func (s *OpStats) ALUOp(cc uint64, warp, pc, lane, thread int, op isa.Opcode, a, b, c uint32) {
	s.ThreadOps[op]++
}

// SFUOp implements gpu.Monitor.
func (s *OpStats) SFUOp(cc uint64, warp, pc, lane, thread int, op isa.Opcode, a uint32) {
	s.ThreadOps[op]++
}

// MemOp implements gpu.Monitor.
func (s *OpStats) MemOp(cc uint64, warp, pc, thread int, op isa.Opcode, sp gpu.Space, addr uint32) {
	s.ThreadOps[op]++
}

// Store implements gpu.Monitor.
func (s *OpStats) Store(cc uint64, warp, pc, thread int, sp gpu.Space, addr, v uint32) {
	s.Stores++
}

// DistinctOpcodes returns how many different opcodes were decoded.
func (s *OpStats) DistinctOpcodes() int {
	n := 0
	for _, c := range s.Decodes {
		if c > 0 {
			n++
		}
	}
	return n
}

// TotalDecodes returns the dynamic warp-instruction count.
func (s *OpStats) TotalDecodes() uint64 {
	var n uint64
	for _, c := range s.Decodes {
		n += c
	}
	return n
}

// String renders the histogram, most frequent first.
func (s *OpStats) String() string {
	type row struct {
		op isa.Opcode
		n  uint64
	}
	var rows []row
	for op, n := range s.Decodes {
		if n > 0 {
			rows = append(rows, row{isa.Opcode(op), n})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].op < rows[j].op
	})
	var b strings.Builder
	fmt.Fprintf(&b, "dynamic mix: %d decodes, %d distinct opcodes, %d stores\n",
		s.TotalDecodes(), s.DistinctOpcodes(), s.Stores)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-6s %8d decodes %10d thread-ops\n",
			r.op, s.Decodes[r.op], s.ThreadOps[r.op])
	}
	if e := s.Engine; e.TotalPatterns > 0 || e.FaultEvals > 0 {
		fmt.Fprintf(&b, "engine: %d patterns (%d unique), %d blocks, %d fault evals\n",
			e.TotalPatterns, e.UniquePatterns, e.Blocks, e.FaultEvals)
		fmt.Fprintf(&b, "  dedup hit-rate    %6.2f%%\n", 100*e.DedupHitRate())
		fmt.Fprintf(&b, "  prescreen-skipped %6.2f%%\n", 100*e.PrescreenSkipRatio())
		fmt.Fprintf(&b, "  cone-skipped      %6.2f%%\n", 100*e.ConeSkipRatio())
		if e.BlockWords > 0 {
			fmt.Fprintf(&b, "  block width       %d words (%d patterns/block)\n",
				e.BlockWords, 64*e.BlockWords)
		}
		if e.PlanRuns > 0 {
			fmt.Fprintf(&b, "  eval plan         %d levels, %d kind-runs\n",
				e.PlanLevels, e.PlanRuns)
		}
	}
	return b.String()
}

var _ gpu.Monitor = (*OpStats)(nil)

// Tee fans monitor events out to several monitors, so a trace collector
// and a statistics monitor can observe the same run.
type Tee struct {
	Monitors []gpu.Monitor
}

// NewTee builds a fan-out monitor.
func NewTee(mons ...gpu.Monitor) *Tee { return &Tee{Monitors: mons} }

func (t *Tee) Fetch(cc uint64, warp, pc int, w isa.Word) {
	for _, m := range t.Monitors {
		m.Fetch(cc, warp, pc, w)
	}
}

func (t *Tee) Decode(cc uint64, warp, pc int, in isa.Instruction) {
	for _, m := range t.Monitors {
		m.Decode(cc, warp, pc, in)
	}
}

func (t *Tee) ALUOp(cc uint64, warp, pc, lane, thread int, op isa.Opcode, a, b, c uint32) {
	for _, m := range t.Monitors {
		m.ALUOp(cc, warp, pc, lane, thread, op, a, b, c)
	}
}

func (t *Tee) SFUOp(cc uint64, warp, pc, lane, thread int, op isa.Opcode, a uint32) {
	for _, m := range t.Monitors {
		m.SFUOp(cc, warp, pc, lane, thread, op, a)
	}
}

func (t *Tee) MemOp(cc uint64, warp, pc, thread int, op isa.Opcode, sp gpu.Space, addr uint32) {
	for _, m := range t.Monitors {
		m.MemOp(cc, warp, pc, thread, op, sp, addr)
	}
}

func (t *Tee) Store(cc uint64, warp, pc, thread int, sp gpu.Space, addr, v uint32) {
	for _, m := range t.Monitors {
		m.Store(cc, warp, pc, thread, sp, addr, v)
	}
}

func (t *Tee) Retire(ccStart, ccEnd uint64, warp, pc int) {
	for _, m := range t.Monitors {
		m.Retire(ccStart, ccEnd, warp, pc)
	}
}

var _ gpu.Monitor = (*Tee)(nil)
