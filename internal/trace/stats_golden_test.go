package trace

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"gpustl/internal/asm"
	"gpustl/internal/gpu"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestOpStatsGolden locks down the full String() report — ordering,
// alignment, counts — on a small deterministic campaign. The report was
// previously exercised only by eye through cmd/tables; a byte-for-byte
// golden file catches accidental format or counting drift. Regenerate
// with `go test ./internal/trace/ -run Golden -update` after an
// intentional change.
func TestOpStatsGolden(t *testing.T) {
	// A fixed two-warp kernel touching ALU, SFU and memory paths, with a
	// tie in decode counts (SHLI vs SIN) to pin the opcode tiebreak.
	prog, err := asm.Assemble(`
		S2R  R0, SR_TID
		SHLI R1, R0, 2
		IADD R2, R0, R0
		IADD R3, R2, R0
		SIN  R4, R3
		GST  [R1+0], R4
		EXIT
	`)
	if err != nil {
		t.Fatal(err)
	}
	stats := &OpStats{}
	g, err := gpu.New(gpu.DefaultConfig(), stats)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(gpu.Kernel{Prog: prog, Blocks: 1, ThreadsPerBlock: 64}); err != nil {
		t.Fatal(err)
	}
	got := stats.String()

	golden := filepath.Join("testdata", "opstats.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if got != string(want) {
		t.Errorf("OpStats report drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
