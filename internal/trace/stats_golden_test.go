package trace

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"gpustl/internal/asm"
	"gpustl/internal/circuits"
	"gpustl/internal/fault"
	"gpustl/internal/gpu"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestOpStatsGolden locks down the full String() report — ordering,
// alignment, counts — on a small deterministic campaign. The report was
// previously exercised only by eye through cmd/tables; a byte-for-byte
// golden file catches accidental format or counting drift. Regenerate
// with `go test ./internal/trace/ -run Golden -update` after an
// intentional change.
func TestOpStatsGolden(t *testing.T) {
	// A fixed two-warp kernel touching ALU, SFU and memory paths, with a
	// tie in decode counts (SHLI vs SIN) to pin the opcode tiebreak.
	prog, err := asm.Assemble(`
		S2R  R0, SR_TID
		SHLI R1, R0, 2
		IADD R2, R0, R0
		IADD R3, R2, R0
		SIN  R4, R3
		GST  [R1+0], R4
		EXIT
	`)
	if err != nil {
		t.Fatal(err)
	}
	stats := &OpStats{}
	g, err := gpu.New(gpu.DefaultConfig(), stats)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(gpu.Kernel{Prog: prog, Blocks: 1, ThreadsPerBlock: 64}); err != nil {
		t.Fatal(err)
	}
	got := stats.String()

	golden := filepath.Join("testdata", "opstats.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if got != string(want) {
		t.Errorf("OpStats report drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestOpStatsEngineGolden locks down the campaign-level report: OpStats
// and a pattern Collector observe the same run through a Tee, the
// collected stimulus drives a fault campaign, and the campaign's engine
// counters (dedup hit-rate, prescreen-skip ratio) are folded into the
// report via RecordEngine. The golden file pins the engine block's
// numbers, so a change that silently defeats an optimization (e.g. a
// stimulus tweak that kills dedup) fails this test even when wall-clock
// noise would hide it. Regenerate with -update after intentional
// changes.
func TestOpStatsEngineGolden(t *testing.T) {
	// A looping kernel: the re-executed iterations feed the SP lanes
	// duplicate stimulus, so the dedup counters are exercised (nonzero
	// hit-rate), not just present.
	prog, err := asm.Assemble(`
		S2R   R0, SR_TID
		MVI   R1, 3
		IADDI R2, R0, 5
	loop:
		IADD  R3, R2, R0
		IMULI R4, R3, 7
		IADDI R1, R1, -1
		ISETI R5, R1, 0, NE, P1
	@P1	BRA   loop
		GST   [R0+0], R4
		EXIT
	`)
	if err != nil {
		t.Fatal(err)
	}
	stats := &OpStats{}
	col := NewCollector(circuits.ModuleSP)
	col.LiteRows = true
	g, err := gpu.New(gpu.DefaultConfig(), NewTee(stats, col))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(gpu.Kernel{Prog: prog, Blocks: 1, ThreadsPerBlock: 64}); err != nil {
		t.Fatal(err)
	}
	m, err := circuits.Build(circuits.ModuleSP, 0)
	if err != nil {
		t.Fatal(err)
	}
	camp := fault.NewCampaign(m)
	camp.SampleFaults(400, 7)
	rep := camp.Simulate(col.Patterns, fault.SimOptions{Workers: 1})
	stats.RecordEngine(rep.Stats)
	if stats.Engine.DedupHitRate() == 0 {
		t.Fatal("looping kernel produced no duplicate stimulus; engine block untested")
	}
	got := stats.String()

	golden := filepath.Join("testdata", "opstats_engine.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if got != string(want) {
		t.Errorf("OpStats engine report drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
