package trace

import (
	"strings"
	"testing"

	"gpustl/internal/asm"
	"gpustl/internal/circuits"
	"gpustl/internal/gpu"
	"gpustl/internal/isa"
)

func TestOpStats(t *testing.T) {
	prog, err := asm.Assemble(`
		S2R  R0, SR_TID
		SHLI R1, R0, 2
		IADD R2, R0, R0
		IADD R3, R2, R0
		SIN  R4, R3
		GST  [R1+0], R4
		EXIT
	`)
	if err != nil {
		t.Fatal(err)
	}
	stats := &OpStats{}
	g, _ := gpu.New(gpu.DefaultConfig(), stats)
	if _, err := g.Run(gpu.Kernel{Prog: prog, Blocks: 1, ThreadsPerBlock: 64}); err != nil {
		t.Fatal(err)
	}
	// Two warps: each decodes IADD twice.
	if stats.Decodes[isa.OpIADD] != 4 {
		t.Errorf("IADD decodes = %d, want 4", stats.Decodes[isa.OpIADD])
	}
	if stats.ThreadOps[isa.OpIADD] != 2*64 {
		t.Errorf("IADD thread-ops = %d, want 128", stats.ThreadOps[isa.OpIADD])
	}
	if stats.ThreadOps[isa.OpSIN] != 64 || stats.Stores != 64 {
		t.Errorf("SIN=%d stores=%d", stats.ThreadOps[isa.OpSIN], stats.Stores)
	}
	if stats.DistinctOpcodes() != 6 {
		t.Errorf("distinct = %d, want 6", stats.DistinctOpcodes())
	}
	if !strings.Contains(stats.String(), "IADD") {
		t.Error("String() missing opcode rows")
	}
}

func TestTeeDeliversToAll(t *testing.T) {
	prog, err := asm.Assemble("MVI R1, 1\nGST [R0+0], R1\nEXIT")
	if err != nil {
		t.Fatal(err)
	}
	stats := &OpStats{}
	col := NewCollector(circuits.ModuleDU)
	g, _ := gpu.New(gpu.DefaultConfig(), NewTee(stats, col))
	if _, err := g.Run(gpu.Kernel{Prog: prog, Blocks: 1, ThreadsPerBlock: 32}); err != nil {
		t.Fatal(err)
	}
	if stats.TotalDecodes() != 3 {
		t.Errorf("stats decodes = %d", stats.TotalDecodes())
	}
	if len(col.Patterns) != 3 || len(col.Rows) != 3 {
		t.Errorf("collector got %d patterns, %d rows", len(col.Patterns), len(col.Rows))
	}
}
