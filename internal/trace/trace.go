// Package trace implements the logic-tracing stage of the compaction
// method (stage 2 of the paper).
//
// A Collector plays the role of the hardware monitor the authors insert
// into one SM of the RT-level GPU model: attached to the simulator as a
// gpu.Monitor, it records, for every clock cycle, the decoded instruction,
// program counter, executed instruction per warp, warp identifier and cycle
// value (the Tracing Report), and — like the gate-level logic simulation —
// extracts the sequence of test patterns applied to the target module by
// observing the module's input activity (the Test Pattern Report).
package trace

import (
	"fmt"

	"gpustl/internal/circuits"
	"gpustl/internal/fault"
	"gpustl/internal/gpu"
	"gpustl/internal/isa"
)

// Row is one line of the Tracing Report: one decoded warp instruction.
type Row struct {
	CC   uint64
	Warp int16
	PC   int32
	Op   isa.Opcode
	Word isa.Word
}

// Span is the temporal life of one executed warp instruction (start/end
// clock cycles), recovered from the retire events.
type Span struct {
	Warp    int16
	PC      int32
	CCStart uint64
	CCEnd   uint64
}

// StoreEvent is an architecturally observable write (GST/SST) — the PTP's
// observation points.
type StoreEvent struct {
	CC     uint64
	Warp   int16
	PC     int32
	Thread int16
	Space  gpu.Space
	Addr   uint32
	Value  uint32
}

// Collector gathers the Tracing Report and the target module's Test
// Pattern Report during one logic simulation.
type Collector struct {
	gpu.NopMonitor

	// Target selects which module's input patterns are extracted.
	Target circuits.ModuleKind

	Rows     []Row
	Spans    []Span
	Patterns []fault.TimedPattern
	Stores   []StoreEvent

	// LiteRows drops the Rows/Spans reports (pattern extraction only).
	LiteRows bool

	// curCond holds the latest decoded condition field per warp; the SM
	// decodes an instruction before its execute-stage callbacks fire, so
	// ALUOp can recover the comparison condition of ISET/ISETI from here.
	curCond []isa.Cond
}

// NewCollector creates a collector extracting patterns for the target
// module.
func NewCollector(target circuits.ModuleKind) *Collector {
	return &Collector{Target: target}
}

// Fetch implements gpu.Monitor; the raw word and PC form the DU pattern
// and, for the pipeline-register target, one registered cycle (enabled,
// no flush — the functional fetch stream).
func (c *Collector) Fetch(cc uint64, warp, pc int, word isa.Word) {
	switch c.Target {
	case circuits.ModuleDU:
		c.Patterns = append(c.Patterns, fault.TimedPattern{
			CC: cc, Lane: 0, Warp: int16(warp), PC: int32(pc),
			Pat: circuits.EncodeDUPattern(word, pc),
		})
	case circuits.ModulePIPE:
		c.Patterns = append(c.Patterns, fault.TimedPattern{
			CC: cc, Lane: 0, Warp: int16(warp), PC: int32(pc),
			Pat: circuits.EncodePIPEPattern(uint64(word), uint32(pc), true, false),
		})
	}
}

// Decode implements gpu.Monitor; every decode produces a trace row.
func (c *Collector) Decode(cc uint64, warp, pc int, in isa.Instruction) {
	for len(c.curCond) <= warp {
		c.curCond = append(c.curCond, isa.CondEQ)
	}
	c.curCond[warp] = in.Cond
	if c.LiteRows {
		return
	}
	c.Rows = append(c.Rows, Row{
		CC: cc, Warp: int16(warp), PC: int32(pc), Op: in.Op, Word: isa.Encode(in),
	})
}

// ALUOp implements gpu.Monitor; SP-datapath operand tuples form the SP
// patterns and FP32-unit tuples the FP32 patterns (one per active thread,
// on the lane that executes it).
func (c *Collector) ALUOp(cc uint64, warp, pc, lane, thread int, op isa.Opcode, a, b, cop uint32) {
	if c.Target == circuits.ModuleFP32 {
		fn, ra, rb, rc, ok := circuits.FP32FnOf(op, a, b, cop)
		if !ok {
			return
		}
		c.Patterns = append(c.Patterns, fault.TimedPattern{
			CC: cc, Lane: int16(lane), Warp: int16(warp), PC: int32(pc),
			Pat: circuits.EncodeFP32Pattern(fn, ra, rb, rc),
		})
		return
	}
	if c.Target != circuits.ModuleSP {
		return
	}
	fn, ra, rb, rc, ok := circuits.SPFnOf(op, a, b, cop)
	if !ok {
		return // FP32 op: executes outside the SP integer datapath
	}
	cond := isa.CondEQ
	if warp < len(c.curCond) {
		cond = c.curCond[warp]
	}
	c.Patterns = append(c.Patterns, fault.TimedPattern{
		CC: cc, Lane: int16(lane), Warp: int16(warp), PC: int32(pc),
		Pat: circuits.EncodeSPPattern(fn, cond, ra, rb, rc),
	})
}

// SFUOp implements gpu.Monitor.
func (c *Collector) SFUOp(cc uint64, warp, pc, lane, thread int, op isa.Opcode, a uint32) {
	if c.Target != circuits.ModuleSFU {
		return
	}
	fn, ok := circuits.SFUFnOf(op)
	if !ok {
		return
	}
	c.Patterns = append(c.Patterns, fault.TimedPattern{
		CC: cc, Lane: int16(lane), Warp: int16(warp), PC: int32(pc),
		Pat: circuits.EncodeSFUPattern(fn, a),
	})
}

// Store implements gpu.Monitor.
func (c *Collector) Store(cc uint64, warp, pc, thread int, sp gpu.Space, addr, v uint32) {
	c.Stores = append(c.Stores, StoreEvent{
		CC: cc, Warp: int16(warp), PC: int32(pc), Thread: int16(thread),
		Space: sp, Addr: addr, Value: v,
	})
}

// Retire implements gpu.Monitor.
func (c *Collector) Retire(ccStart, ccEnd uint64, warp, pc int) {
	if c.LiteRows {
		return
	}
	c.Spans = append(c.Spans, Span{
		Warp: int16(warp), PC: int32(pc), CCStart: ccStart, CCEnd: ccEnd,
	})
}

var _ gpu.Monitor = (*Collector)(nil)

// CCToPC builds the cc → (warp, pc) join index the labeling stage uses to
// match Fault Sim Report entries back to instructions: for each pattern
// cc, the warp instruction in flight. Built from the retire spans.
func (c *Collector) CCToPC() *CCIndex {
	idx := &CCIndex{spans: c.Spans}
	return idx
}

// CCIndex resolves clock cycles to the warp instruction occupying them.
// Spans are recorded in execution order (the SM runs one warp instruction
// at a time), so binary search over start cycles suffices.
type CCIndex struct {
	spans []Span
}

// Lookup returns the (warp, pc) whose span contains cc.
func (ix *CCIndex) Lookup(cc uint64) (warp int16, pc int32, ok bool) {
	lo, hi := 0, len(ix.spans)
	for lo < hi {
		mid := (lo + hi) / 2
		if ix.spans[mid].CCStart <= cc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0, 0, false
	}
	s := ix.spans[lo-1]
	if cc > s.CCEnd {
		return 0, 0, false
	}
	return s.Warp, s.PC, true
}

// Stats summarizes a trace for reporting.
func (c *Collector) Stats() string {
	return fmt.Sprintf("trace: %d rows, %d spans, %d %v patterns, %d stores",
		len(c.Rows), len(c.Spans), len(c.Patterns), c.Target, len(c.Stores))
}
