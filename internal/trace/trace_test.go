package trace

import (
	"testing"

	"gpustl/internal/asm"
	"gpustl/internal/circuits"
	"gpustl/internal/gpu"
	"gpustl/internal/isa"
)

const testProg = `
	S2R   R0, SR_TID
	SHLI  R1, R0, 2
	IADDI R2, R0, 5
	IMULI R3, R2, 3
	XOR   R4, R3, R0
	SIN   R5, R4
	GST   [R1+0], R4
	EXIT
`

func runWith(t *testing.T, target circuits.ModuleKind) *Collector {
	t.Helper()
	prog, err := asm.Assemble(testProg)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(target)
	g, err := gpu.New(gpu.DefaultConfig(), col)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(gpu.Kernel{Prog: prog, Blocks: 1, ThreadsPerBlock: 32}); err != nil {
		t.Fatal(err)
	}
	return col
}

func TestTraceRowsAndSpans(t *testing.T) {
	col := runWith(t, circuits.ModuleDU)
	if len(col.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(col.Rows))
	}
	for i, r := range col.Rows {
		if int(r.PC) != i {
			t.Errorf("row %d pc = %d", i, r.PC)
		}
		if r.Warp != 0 {
			t.Errorf("row %d warp = %d", i, r.Warp)
		}
	}
	if len(col.Spans) != 8 {
		t.Fatalf("spans = %d, want 8", len(col.Spans))
	}
	// Spans must be disjoint and increasing.
	for i := 1; i < len(col.Spans); i++ {
		if col.Spans[i].CCStart <= col.Spans[i-1].CCEnd {
			t.Fatalf("span %d overlaps previous", i)
		}
	}
}

func TestDUPatterns(t *testing.T) {
	col := runWith(t, circuits.ModuleDU)
	// One DU pattern per fetched warp instruction.
	if len(col.Patterns) != 8 {
		t.Fatalf("DU patterns = %d, want 8", len(col.Patterns))
	}
	for _, p := range col.Patterns {
		if p.Lane != 0 {
			t.Errorf("DU pattern lane = %d", p.Lane)
		}
		// The instruction-word field of the pattern must decode to the
		// opcode of the traced instruction at that PC.
		in, err := isa.Decode(isa.Word(p.Pat.W[0]))
		if err != nil {
			t.Fatalf("pattern word undecodable: %v", err)
		}
		if int(p.PC) >= len(col.Rows) || col.Rows[p.PC].Op != in.Op {
			t.Errorf("pattern pc %d op %v mismatch", p.PC, in.Op)
		}
	}
}

func TestSPPatterns(t *testing.T) {
	col := runWith(t, circuits.ModuleSP)
	// 5 ALU-class instructions (S2R, SHLI, IADDI, IMULI, XOR) x 32 threads.
	if len(col.Patterns) != 5*32 {
		t.Fatalf("SP patterns = %d, want %d", len(col.Patterns), 5*32)
	}
	// Lanes must cycle 0..7 within each instruction.
	for i, p := range col.Patterns {
		if want := int16(i % 8); p.Lane != want {
			t.Fatalf("pattern %d lane = %d, want %d", i, p.Lane, want)
		}
	}
	// The XOR instruction's pattern for thread 0: a = 15 (=(0+5)*3), b = 0.
	var found bool
	for _, p := range col.Patterns {
		if p.PC == 4 && p.Pat.W[0] == uint64(15) {
			found = true
			break
		}
	}
	if !found {
		t.Error("expected XOR pattern with a=15,b=0 for thread 0")
	}
}

func TestSFUPatterns(t *testing.T) {
	col := runWith(t, circuits.ModuleSFU)
	if len(col.Patterns) != 32 { // one SIN per thread
		t.Fatalf("SFU patterns = %d, want 32", len(col.Patterns))
	}
	for i, p := range col.Patterns {
		if want := int16(i % 2); p.Lane != want {
			t.Fatalf("pattern %d lane = %d, want %d (2 SFUs)", i, p.Lane, want)
		}
		fn := circuits.SFUFn(p.Pat.W[0] >> 32)
		if fn != circuits.SFUSin {
			t.Fatalf("pattern %d fn = %d, want SIN", i, fn)
		}
	}
}

func TestStores(t *testing.T) {
	col := runWith(t, circuits.ModuleDU)
	if len(col.Stores) != 32 {
		t.Fatalf("stores = %d, want 32", len(col.Stores))
	}
	for _, s := range col.Stores {
		if s.Space != gpu.SpaceGlobal || s.PC != 6 {
			t.Errorf("store %+v", s)
		}
	}
}

func TestCCIndexLookup(t *testing.T) {
	col := runWith(t, circuits.ModuleSP)
	idx := col.CCToPC()
	// Every extracted pattern's cc must resolve to its own (warp, pc).
	for _, p := range col.Patterns {
		warp, pc, ok := idx.Lookup(p.CC)
		if !ok {
			t.Fatalf("cc %d not found", p.CC)
		}
		if warp != p.Warp || pc != p.PC {
			t.Fatalf("cc %d resolved to (%d,%d), pattern says (%d,%d)",
				p.CC, warp, pc, p.Warp, p.PC)
		}
	}
	// Out-of-range cycles fail cleanly.
	if _, _, ok := idx.Lookup(1 << 60); ok {
		t.Error("lookup past the end succeeded")
	}
}

func TestLiteRows(t *testing.T) {
	prog, err := asm.Assemble(testProg)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(circuits.ModuleSP)
	col.LiteRows = true
	g, _ := gpu.New(gpu.DefaultConfig(), col)
	if _, err := g.Run(gpu.Kernel{Prog: prog, Blocks: 1, ThreadsPerBlock: 32}); err != nil {
		t.Fatal(err)
	}
	if len(col.Rows) != 0 || len(col.Spans) != 0 {
		t.Fatalf("LiteRows kept rows=%d spans=%d", len(col.Rows), len(col.Spans))
	}
	if len(col.Patterns) == 0 {
		t.Fatal("LiteRows dropped patterns")
	}
}

func TestISETCondReachesPattern(t *testing.T) {
	prog, err := asm.Assemble(`
		S2R   R0, SR_TID
		ISETI R1, R0, 7, GE, P0
		EXIT`)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(circuits.ModuleSP)
	g, _ := gpu.New(gpu.DefaultConfig(), col)
	if _, err := g.Run(gpu.Kernel{Prog: prog, Blocks: 1, ThreadsPerBlock: 32}); err != nil {
		t.Fatal(err)
	}
	var isetSeen bool
	for _, p := range col.Patterns {
		if p.PC != 1 {
			continue
		}
		isetSeen = true
		cond := isa.Cond(p.Pat.W[1] >> 36 & 0x7)
		if cond != isa.CondGE {
			t.Fatalf("ISET pattern cond = %v, want GE", cond)
		}
	}
	if !isetSeen {
		t.Fatal("no ISET pattern")
	}
}
