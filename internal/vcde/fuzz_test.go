package vcde

import (
	"bytes"
	"strings"
	"testing"

	"gpustl/internal/circuits"
	"gpustl/internal/fault"
)

// FuzzRead checks the parser never panics on arbitrary input and that
// anything it accepts re-serializes losslessly.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	Write(&seed, Header{Module: circuits.ModuleSP, Lanes: 8, Inputs: 103},
		[]fault.TimedPattern{{CC: 5, Lane: 2, Warp: 1, PC: 9,
			Pat: circuits.EncodeSPPattern(circuits.SPXor, 0, 1, 2, 3)}})
	f.Add(seed.String())
	f.Add("VCDE 1\nend")
	f.Add("garbage")
	f.Add("VCDE 1\nmodule DU lanes 1 inputs 88\np 0 0 0 0 0 0\nend")
	f.Fuzz(func(t *testing.T, src string) {
		h, pats, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, h, pats); err != nil {
			t.Fatal(err)
		}
		h2, pats2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if h2 != h || len(pats2) != len(pats) {
			t.Fatalf("lossy round trip")
		}
	})
}
