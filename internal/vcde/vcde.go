// Package vcde reads and writes test-pattern files in a VCDE-like text
// format — the interchange format between the logic-tracing stage and the
// fault injector, mirroring the paper's use of VCDE files to carry the
// extracted test patterns of the target modules.
//
// The format is line-oriented:
//
//	VCDE 1
//	module SP lanes 8 inputs 103
//	p <cc> <lane> <warp> <pc> <w0-hex> <w1-hex>
//	...
//	end
//
// Lines starting with '#' are comments.
package vcde

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gpustl/internal/circuits"
	"gpustl/internal/fault"
)

// Header describes the pattern stream.
type Header struct {
	Module circuits.ModuleKind
	Lanes  int
	Inputs int
}

// Write serializes a pattern stream.
func Write(w io.Writer, h Header, patterns []fault.TimedPattern) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "VCDE 1")
	fmt.Fprintf(bw, "module %s lanes %d inputs %d\n", h.Module, h.Lanes, h.Inputs)
	for _, p := range patterns {
		fmt.Fprintf(bw, "p %d %d %d %d %x %x\n",
			p.CC, p.Lane, p.Warp, p.PC, p.Pat.W[0], p.Pat.W[1])
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// Read parses a pattern stream written by Write.
func Read(r io.Reader) (Header, []fault.TimedPattern, error) {
	var h Header
	var pats []fault.TimedPattern
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	sawMagic, sawEnd := false, false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		switch {
		case !sawMagic:
			if text != "VCDE 1" {
				return h, nil, fmt.Errorf("vcde: line %d: bad magic %q", line, text)
			}
			sawMagic = true

		case strings.HasPrefix(text, "module "):
			f := strings.Fields(text)
			if len(f) != 6 || f[2] != "lanes" || f[4] != "inputs" {
				return h, nil, fmt.Errorf("vcde: line %d: bad module header", line)
			}
			mk, err := moduleByName(f[1])
			if err != nil {
				return h, nil, fmt.Errorf("vcde: line %d: %v", line, err)
			}
			h.Module = mk
			if h.Lanes, err = strconv.Atoi(f[3]); err != nil {
				return h, nil, fmt.Errorf("vcde: line %d: bad lanes", line)
			}
			if h.Inputs, err = strconv.Atoi(f[5]); err != nil {
				return h, nil, fmt.Errorf("vcde: line %d: bad inputs", line)
			}

		case strings.HasPrefix(text, "p "):
			f := strings.Fields(text)
			if len(f) != 7 {
				return h, nil, fmt.Errorf("vcde: line %d: bad pattern line", line)
			}
			var p fault.TimedPattern
			cc, err := strconv.ParseUint(f[1], 10, 64)
			if err != nil {
				return h, nil, fmt.Errorf("vcde: line %d: bad cc", line)
			}
			p.CC = cc
			lane, err := strconv.ParseInt(f[2], 10, 16)
			if err != nil {
				return h, nil, fmt.Errorf("vcde: line %d: bad lane", line)
			}
			p.Lane = int16(lane)
			warp, err := strconv.ParseInt(f[3], 10, 16)
			if err != nil {
				return h, nil, fmt.Errorf("vcde: line %d: bad warp", line)
			}
			p.Warp = int16(warp)
			pc, err := strconv.ParseInt(f[4], 10, 32)
			if err != nil {
				return h, nil, fmt.Errorf("vcde: line %d: bad pc", line)
			}
			p.PC = int32(pc)
			if p.Pat.W[0], err = strconv.ParseUint(f[5], 16, 64); err != nil {
				return h, nil, fmt.Errorf("vcde: line %d: bad w0", line)
			}
			if p.Pat.W[1], err = strconv.ParseUint(f[6], 16, 64); err != nil {
				return h, nil, fmt.Errorf("vcde: line %d: bad w1", line)
			}
			pats = append(pats, p)

		case text == "end":
			sawEnd = true

		default:
			return h, nil, fmt.Errorf("vcde: line %d: unexpected %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return h, nil, err
	}
	if !sawMagic {
		return h, nil, fmt.Errorf("vcde: missing magic")
	}
	if !sawEnd {
		return h, nil, fmt.Errorf("vcde: missing end marker")
	}
	return h, pats, nil
}

func moduleByName(name string) (circuits.ModuleKind, error) {
	for k := circuits.ModuleKind(0); int(k) < circuits.NumModuleKinds; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown module %q", name)
}
