package vcde

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"gpustl/internal/circuits"
	"gpustl/internal/fault"
	"gpustl/internal/isa"
)

func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pats := make([]fault.TimedPattern, 500)
	for i := range pats {
		pats[i] = fault.TimedPattern{
			CC:   r.Uint64() >> 16,
			Lane: int16(r.Intn(8)),
			Warp: int16(r.Intn(32)),
			PC:   int32(r.Intn(1 << 20)),
			Pat: circuits.EncodeSPPattern(
				circuits.SPFn(r.Intn(circuits.NumSPFns)),
				isa.Cond(r.Intn(isa.NumConds)),
				r.Uint32(), r.Uint32(), r.Uint32()),
		}
	}
	h := Header{Module: circuits.ModuleSP, Lanes: 8, Inputs: 103}
	var buf bytes.Buffer
	if err := Write(&buf, h, pats); err != nil {
		t.Fatal(err)
	}
	h2, pats2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Fatalf("header %+v != %+v", h2, h)
	}
	if len(pats2) != len(pats) {
		t.Fatalf("len %d != %d", len(pats2), len(pats))
	}
	for i := range pats {
		if pats[i] != pats2[i] {
			t.Fatalf("pattern %d: %+v != %+v", i, pats[i], pats2[i])
		}
	}
}

func TestReadEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Header{Module: circuits.ModuleDU, Lanes: 1, Inputs: 88}, nil); err != nil {
		t.Fatal(err)
	}
	h, pats, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Module != circuits.ModuleDU || len(pats) != 0 {
		t.Fatalf("h=%+v pats=%d", h, len(pats))
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"NOTVCDE",
		"VCDE 1\nmodule BOGUS lanes 1 inputs 2\nend",
		"VCDE 1\nmodule SP lanes x inputs 2\nend",
		"VCDE 1\np 1 2 3\nend",
		"VCDE 1\np 1 2 3 4 zz 0\nend",
		"VCDE 1\nwhatisthis\nend",
		"VCDE 1\nmodule SP lanes 8 inputs 103\n", // missing end
	}
	for _, src := range cases {
		if _, _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", src)
		}
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	src := "# header comment\nVCDE 1\n\nmodule SFU lanes 2 inputs 35\n# data\np 10 1 0 5 deadbeef 0\nend\n"
	h, pats, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if h.Module != circuits.ModuleSFU || len(pats) != 1 {
		t.Fatalf("h=%+v pats=%d", h, len(pats))
	}
	if pats[0].Pat.W[0] != 0xdeadbeef || pats[0].CC != 10 || pats[0].Lane != 1 {
		t.Fatalf("pattern: %+v", pats[0])
	}
}
