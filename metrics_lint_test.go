package gpustl

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gpustl/internal/obs"
	"gpustl/internal/ptpgen"
	"gpustl/internal/server"
	"gpustl/internal/stl"
)

// TestMetricsLint is the scrape-path hygiene gate: it runs a real
// campaign through an in-process stlserver wired exactly like the
// daemon (metrics, tracer, usage meter, SLO engine, build info), then
// feeds everything /metrics serves through the Prometheus text-format
// linter. A malformed series name or incoherent histogram introduced
// anywhere in the codebase fails here, not in production Prometheus.
//
// The same run doubles as the end-to-end observability check: the
// submitted X-Gpustl-Trace context must reappear in the server's
// trace file, and /v1/usage must bill the campaign to its tenant.
func TestMetricsLint(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg, "stlserver")
	usage := obs.NewUsageMeter(reg)
	tracePath := filepath.Join(dir, "trace.jsonl")
	tracer := obs.NewTracer(tracePath)

	srv := server.New(server.Options{
		StateDir:       filepath.Join(dir, "state"),
		Holder:         "lint-test",
		MaxActive:      2,
		HeartbeatEvery: 10 * time.Millisecond,
		LeaseTTL:       200 * time.Millisecond,
		DrainGrace:     5 * time.Second,
		SimWorkers:     2,
		Metrics:        reg,
		Tracer:         tracer,
		Usage:          usage,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()
	defer func() {
		cancel()
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			t.Error("server did not stop")
		}
	}()
	for deadline := time.Now().Add(10 * time.Second); !srv.Ready(); {
		if time.Now().After(deadline) {
			t.Fatal("server not ready after 10s")
		}
		time.Sleep(2 * time.Millisecond)
	}

	slo := obs.NewSLOEngine(reg, []obs.SLO{
		obs.LatencySLO(reg, "campaign-latency", "gpustl_server_campaign_seconds", 300, 0.99, "campaigns under 5m"),
		obs.RatioSLO("submit-shed", 0.99,
			obs.CounterSeriesValue(reg, "gpustl_server_submit_rejected_total"),
			obs.CounterSeriesValue(reg, "gpustl_server_campaigns_submitted_total"),
			"submissions not shed"),
	})
	h := srv.Handler()

	// Submit a small campaign with a propagated trace context, the way
	// a traced CLI client would.
	lib := &stl.STL{PTPs: []*stl.PTP{ptpgen.IMM(6, 11), ptpgen.MEM(6, 12)}}
	var libBuf bytes.Buffer
	if err := stl.WriteSTL(&libBuf, lib); err != nil {
		t.Fatal(err)
	}
	fc := 5.0
	body, err := json.Marshal(map[string]any{
		"id": "lint-c1",
		"spec": &server.Spec{
			STL: libBuf.Bytes(), Faults: 300, FCTol: &fc, Tenant: "acme",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := obs.SpanContext{Trace: obs.NewTraceID(), Span: 0xabcdef12, Flags: 1}
	req := httptest.NewRequest("POST", "/api/v1/campaigns", bytes.NewReader(body))
	req.Header.Set(obs.TraceHeader, sc.Header())
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusAccepted && rr.Code != http.StatusOK {
		t.Fatalf("submit status %d: %s", rr.Code, rr.Body.String())
	}
	for deadline := time.Now().Add(60 * time.Second); ; {
		v, ok := srv.Get("lint-c1")
		if ok && v.State.Terminal() {
			if v.State != server.StateDone {
				t.Fatalf("campaign ended %s: %s", v.State, v.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign not terminal after 60s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	slo.Sample()

	// Scrape through the same mux the daemon serves and lint the result.
	mux := obs.NewDebugMuxSLO(reg, "", slo)
	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	probs, err := obs.LintPrometheusText(rr.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range probs {
		t.Errorf("lint: %s", p)
	}

	// The scrape must carry the fleet-observability families this run
	// exercised; their absence means the wiring regressed silently.
	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	scrape := rr.Body.String()
	for _, want := range []string{
		`gpustl_build_info{`,
		`gpustl_usage_campaigns_total{tenant="acme"}`,
		`gpustl_usage_fault_blocks_total{tenant="acme"}`,
		`gpustl_slo_burn_rate{`,
		"gpustl_server_campaign_seconds_bucket",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// Usage accounting reached the API.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/usage", nil))
	var ur struct {
		Tenants []obs.TenantUsage `json:"tenants"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &ur); err != nil {
		t.Fatalf("usage response: %v\n%s", err, rr.Body.String())
	}
	var acme *obs.TenantUsage
	for i := range ur.Tenants {
		if ur.Tenants[i].Tenant == "acme" {
			acme = &ur.Tenants[i]
		}
	}
	if acme == nil || acme.Campaigns != 1 || acme.FaultBlocks == 0 {
		t.Fatalf("tenant acme not billed: %+v", ur.Tenants)
	}

	// The propagated trace context made it into the server's trace file:
	// the execute span joined the client's trace remotely and a
	// queue-wait child was recorded.
	if err := tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadTraceFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var joined, queueWait bool
	for _, ev := range events {
		if ev.Trace == sc.Trace.String() {
			joined = true
			if ev.Name == "queue-wait" {
				queueWait = true
			}
		}
	}
	if !joined {
		t.Errorf("no server span joined the submitted trace %s", sc.Trace)
	}
	if !queueWait {
		t.Error("no queue-wait span recorded for the traced campaign")
	}
}
